package corecover

import (
	"viewplan/internal/cq"
	"viewplan/internal/views"
)

// TupleCore is the tuple-core of a view tuple (Definition 4.1): the unique
// maximal set of query subgoals covered by the tuple, together with the
// witnessing mapping from the covered subgoals' variables into the
// tuple's expansion.
type TupleCore struct {
	// Tuple is the view tuple the core belongs to.
	Tuple views.Tuple
	// Covered is the set of covered subgoal indexes of the minimized query.
	Covered SubgoalSet
	// Mapping sends each variable of the covered subgoals to its image in
	// the tuple's expansion: the identity on variables shared with the
	// tuple, and fresh existential variables otherwise.
	Mapping cq.Subst
	// Expansion is the tuple's expansion body used by the mapping.
	Expansion []cq.Atom
}

// IsEmpty reports an empty tuple-core. Empty-core tuples cover no query
// subgoal but remain useful to the M2 optimizer as filters (the paper's
// view v3 in the car-loc-part example).
func (c TupleCore) IsEmpty() bool { return c.Covered.IsEmpty() }

// coreComputer carries the per-query state shared by all tuple-core
// computations: the minimized query, its distinguished variables, and the
// per-subgoal variable lists.
type coreComputer struct {
	q    *cq.Query
	head cq.VarSet
}

func newCoreComputer(q *cq.Query) *coreComputer {
	return &coreComputer{q: q, head: q.HeadVars()}
}

// Compute returns the tuple-core of vt for the minimized query.
//
// The computation exploits a structural consequence of Definition 4.1
// (see DESIGN.md): a query variable not among the tuple's arguments must
// map to an existential variable of the tuple's expansion, so Property (3)
// closes candidate subgoal sets under "shares a non-tuple variable". The
// body therefore partitions into closure units; the core is the largest
// union of units that admits a single injective mapping, found by a
// branch-and-bound over units (in practice the union of all individually
// coverable units, which Lemma 4.2 guarantees to be consistent).
func (cc *coreComputer) Compute(vt views.Tuple) (TupleCore, error) {
	gen := cq.NewFreshGen("_E", cc.q.Vars())
	exp, existentials, err := vt.Expansion(gen)
	if err != nil {
		return TupleCore{}, err
	}
	exSet := make(cq.VarSet, len(existentials))
	for _, v := range existentials {
		exSet.Add(v)
	}
	tvArgs := make(cq.TermSet, len(vt.Atom.Args))
	for _, t := range vt.Atom.Args {
		tvArgs.Add(t)
	}

	units := cc.closureUnits(tvArgs)

	// Filter units that cannot possibly be covered: a distinguished query
	// variable inside a unit must appear among the tuple's arguments
	// (Property 2), and each subgoal must be individually embeddable.
	var candidates []SubgoalSet
	for _, u := range units {
		if cc.unitAdmissible(u, tvArgs) && cc.mapUnits(nil, []SubgoalSet{u}, tvArgs, exSet, exp) != nil {
			candidates = append(candidates, u)
		}
	}

	// Try the union of all coverable units first (the common, guaranteed
	// case); fall back to branch and bound over unit subsets if a joint
	// mapping does not exist (defensive: Lemma 4.2 says it always does for
	// minimized queries).
	if m := cc.mapUnits(nil, candidates, tvArgs, exSet, exp); m != nil {
		return TupleCore{Tuple: vt, Covered: unionAll(candidates), Mapping: m, Expansion: exp}, nil
	}
	bestSet, bestMap := cc.bestUnion(candidates, tvArgs, exSet, exp)
	return TupleCore{Tuple: vt, Covered: bestSet, Mapping: bestMap, Expansion: exp}, nil
}

func unionAll(sets []SubgoalSet) SubgoalSet {
	var u SubgoalSet
	for _, s := range sets {
		u = u.Union(s)
	}
	return u
}

// closureUnits partitions the query body into minimal sets closed under
// "if a non-tuple variable occurs in the set, all subgoals using it are in
// the set": connected components of the graph linking subgoals that share
// a variable outside tvArgs.
func (cc *coreComputer) closureUnits(tvArgs cq.TermSet) []SubgoalSet {
	n := len(cc.q.Body)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	byVar := make(map[cq.Var][]int)
	for i, a := range cc.q.Body {
		for _, t := range a.Args {
			if v, ok := t.(cq.Var); ok && !tvArgs.Has(v) {
				byVar[v] = append(byVar[v], i)
			}
		}
	}
	//viewplan:nondet-ok union-find merges commute: the final partition is the same whatever order the shared-variable edges are applied in, and component order below comes from the sorted subgoal scan, not this loop
	for _, idxs := range byVar {
		for k := 1; k < len(idxs); k++ {
			union(idxs[0], idxs[k])
		}
	}
	comp := make(map[int]SubgoalSet)
	var order []int
	for i := 0; i < n; i++ {
		r := find(i)
		if _, ok := comp[r]; !ok {
			order = append(order, r)
		}
		comp[r] = comp[r].With(i)
	}
	out := make([]SubgoalSet, 0, len(order))
	for _, r := range order {
		out = append(out, comp[r])
	}
	return out
}

// unitAdmissible performs the cheap Property-2 check: every distinguished
// query variable occurring in the unit must be among the tuple's
// arguments (otherwise it would have to map to an existential variable of
// the expansion, which Property 2 forbids).
func (cc *coreComputer) unitAdmissible(u SubgoalSet, tvArgs cq.TermSet) bool {
	for _, i := range u.Elements() {
		for _, t := range cc.q.Body[i].Args {
			v, ok := t.(cq.Var)
			if !ok {
				continue
			}
			if cc.head.Has(v) && !tvArgs.Has(v) {
				return false
			}
		}
	}
	return true
}

// mapUnits searches for a single mapping covering all given units jointly:
// identity on tuple arguments, injective fresh-existential images for the
// remaining variables, every subgoal embedded in the expansion. It returns
// the mapping, or nil if none exists. init seeds the mapping (used by the
// subset search); it is not modified.
func (cc *coreComputer) mapUnits(init cq.Subst, units []SubgoalSet, tvArgs cq.TermSet, exSet cq.VarSet, exp []cq.Atom) cq.Subst {
	var goals []int
	for _, u := range units {
		goals = append(goals, u.Elements()...)
	}
	s := cq.NewSubst()
	usedEx := make(cq.TermSet)
	//viewplan:nondet-ok stores are keyed by the range key and usedEx is a set, so the copied seed mapping is order-independent
	for v, img := range init {
		s[v] = img
		if iv, ok := img.(cq.Var); ok && exSet.Has(iv) {
			usedEx.Add(img)
		}
	}
	var rec func(gi int) bool
	rec = func(gi int) bool {
		if gi == len(goals) {
			return true
		}
		a := cc.q.Body[goals[gi]]
		for _, cand := range exp {
			if cand.Pred != a.Pred || len(cand.Args) != len(a.Args) {
				continue
			}
			var trail []cq.Var
			var exTrail []cq.Term
			ok := true
			for j := range a.Args {
				src, dst := a.Args[j], cand.Args[j]
				if tvArgs.Has(src) || cq.IsConst(src) {
					// Identity on tuple arguments and constants.
					if src != dst {
						ok = false
					}
				} else {
					v := src.(cq.Var)
					if img, bound := s[v]; bound {
						if img != dst {
							ok = false
						}
					} else {
						// Must land on an existential variable of the
						// expansion, not yet used by another variable.
						dv, isVar := dst.(cq.Var)
						if !isVar || !exSet.Has(dv) || usedEx.Has(dst) {
							ok = false
						} else {
							s[v] = dst
							usedEx.Add(dst)
							trail = append(trail, v)
							exTrail = append(exTrail, dst)
						}
					}
				}
				if !ok {
					break
				}
			}
			if ok && rec(gi+1) {
				return true
			}
			for k := range trail {
				delete(s, trail[k])
			}
			for _, e := range exTrail {
				delete(usedEx, e)
			}
		}
		return false
	}
	if !rec(0) {
		return nil
	}
	// Record identity images for shared variables too, so the mapping is a
	// complete witness over the covered subgoals' variables.
	for _, gi := range goals {
		for _, t := range cc.q.Body[gi].Args {
			if v, ok := t.(cq.Var); ok && tvArgs.Has(v) {
				s[v] = v
			}
		}
	}
	return s
}

// bestUnion finds the largest (by covered subgoals) union of units that
// admits a joint mapping. Defensive fallback; unit counts are tiny.
func (cc *coreComputer) bestUnion(units []SubgoalSet, tvArgs cq.TermSet, exSet cq.VarSet, exp []cq.Atom) (SubgoalSet, cq.Subst) {
	var bestSet SubgoalSet
	var bestMap cq.Subst
	var rec func(i int, chosen []SubgoalSet)
	rec = func(i int, chosen []SubgoalSet) {
		if i == len(units) {
			u := unionAll(chosen)
			if u.Count() > bestSet.Count() {
				if m := cc.mapUnits(nil, chosen, tvArgs, exSet, exp); m != nil {
					bestSet, bestMap = u, m
				}
			}
			return
		}
		rec(i+1, append(chosen, units[i]))
		rec(i+1, chosen)
	}
	rec(0, nil)
	return bestSet, bestMap
}
