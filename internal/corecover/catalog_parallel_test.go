package corecover

import (
	"testing"

	"viewplan/internal/workload"
)

// requireCatalogsIdentical compares every field of two catalogs except
// the generation (process-unique by design): definition keys, class
// structure, the representative work set, vocabulary ids, mention
// lists, and the prefilter index. Byte-identity here is what makes
// CompileViews' Parallelism setting unobservable downstream — plans,
// caches, and shard prefilters all key off these fields.
func requireCatalogsIdentical(t *testing.T, label string, a, b *Catalog) {
	t.Helper()
	fail := func(field string, x, y any) {
		t.Fatalf("%s: catalogs disagree on %s:\n  a: %v\n  b: %v", label, field, x, y)
	}
	if len(a.keys) != len(b.keys) {
		fail("len(keys)", len(a.keys), len(b.keys))
	}
	for i := range a.keys {
		if a.keys[i] != b.keys[i] {
			fail("keys", a.keys[i], b.keys[i])
		}
	}
	if len(a.classes) != len(b.classes) {
		fail("len(classes)", len(a.classes), len(b.classes))
	}
	for i := range a.classes {
		if len(a.classes[i]) != len(b.classes[i]) {
			fail("class size", a.classes[i], b.classes[i])
		}
		for j := range a.classes[i] {
			if a.classes[i][j].Name() != b.classes[i][j].Name() {
				fail("class member", a.classes[i][j].Name(), b.classes[i][j].Name())
			}
		}
	}
	an, bn := a.work.Names(), b.work.Names()
	if len(an) != len(bn) {
		fail("len(work)", an, bn)
	}
	for i := range an {
		if an[i] != bn[i] {
			fail("work", an[i], bn[i])
		}
	}
	for _, p := range a.BasePreds() {
		ai, _ := a.LookupPred(p)
		bi, ok := b.LookupPred(p)
		if !ok || ai != bi {
			fail("vocab id for "+p, ai, bi)
		}
	}
	if len(a.byPred) != len(b.byPred) {
		fail("len(byPred)", len(a.byPred), len(b.byPred))
	}
	for id, ns := range a.byPred {
		ms := b.byPred[id]
		if len(ns) != len(ms) {
			fail("byPred", ns, ms)
		}
		for i := range ns {
			if ns[i] != ms[i] {
				fail("byPred entry", ns[i], ms[i])
			}
		}
	}
	if len(a.workPreds) != len(b.workPreds) {
		fail("len(workPreds)", len(a.workPreds), len(b.workPreds))
	}
	for i := range a.workPreds {
		if len(a.workPreds[i]) != len(b.workPreds[i]) {
			fail("workPreds", a.workPreds[i], b.workPreds[i])
		}
		for j := range a.workPreds[i] {
			if a.workPreds[i][j] != b.workPreds[i][j] {
				fail("workPreds id", a.workPreds[i][j], b.workPreds[i][j])
			}
		}
	}
}

// Parallel catalog compilation — keys, predicate extraction, and the
// prefilter index all fanned out — produces the byte-identical catalog
// the sequential path does, across the whole differential corpus.
func TestCompileViewsParallelByteIdentical(t *testing.T) {
	for _, inst := range diffCorpus(t) {
		seq, err := CompileViews(inst.Views, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := CompileViews(inst.Views, Options{Parallelism: testParallelism(t)})
		if err != nil {
			t.Fatal(err)
		}
		requireCatalogsIdentical(t, inst.Query.String(), seq, par)
	}
}

// Copy-on-write descendants of a parallel-compiled catalog keep the
// sequential-compile identity too.
func TestCompileViewsParallelMutationsByteIdentical(t *testing.T) {
	inst, err := workload.Generate(workload.Config{
		Shape:         workload.Star,
		QuerySubgoals: 5,
		NumViews:      12,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := CompileViews(inst.Views, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := CompileViews(inst.Views, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	name := inst.Views.Names()[0]
	seq2, err := seq.RemoveView(name)
	if err != nil {
		t.Fatal(err)
	}
	par2, err := par.RemoveView(name)
	if err != nil {
		t.Fatal(err)
	}
	requireCatalogsIdentical(t, "after RemoveView", seq2, par2)
}
