package corecover

// Regression tests for the MinimumCovers cap/accept interaction: the cap
// counts ACCEPTED covers, so a verifier rejecting early candidates must
// never starve the cap or displace an acceptable later cover.

import "testing"

// capSearch builds a universe of 2 subgoals with three minimum covers of
// size 1: sets 0, 1, and 2 each cover everything, so the candidate order
// at size 1 is [[0] [1] [2]].
func capSearch() *coverSearch {
	all := SubgoalSet(0).With(0).With(1)
	return &coverSearch{universe: Universe(2), sets: []SubgoalSet{all, all, all}}
}

// rejectFirst returns a filter that drops covers whose first set index is
// in bad, keeping enumeration order — the shape of the verifier's filter.
func rejectFirst(bad ...int) func([][]int) [][]int {
	return func(covers [][]int) [][]int {
		out := covers[:0]
		for _, c := range covers {
			rejected := false
			for _, b := range bad {
				if c[0] == b {
					rejected = true
				}
			}
			if !rejected {
				out = append(out, c)
			}
		}
		return out
	}
}

func TestMinimumCoversCapCountsAcceptedCovers(t *testing.T) {
	// cap=1 with the first two candidates rejected: the cap must be paid
	// by the accepted cover [2], not consumed by the rejected [0] and [1].
	covers := capSearch().MinimumCovers(1, rejectFirst(0, 1))
	if len(covers) != 1 || len(covers[0]) != 1 || covers[0][0] != 2 {
		t.Fatalf("MinimumCovers(1, reject 0,1) = %v, want [[2]]", covers)
	}
}

func TestMinimumCoversCapTruncatesAfterFilter(t *testing.T) {
	// cap=1 with only the first candidate rejected: two covers survive the
	// filter and the cap keeps the earlier one, preserving enumeration
	// order.
	covers := capSearch().MinimumCovers(1, rejectFirst(0))
	if len(covers) != 1 || covers[0][0] != 1 {
		t.Fatalf("MinimumCovers(1, reject 0) = %v, want [[1]]", covers)
	}
}

func TestMinimumCoversRejectedLevelFallsThrough(t *testing.T) {
	// Universe {0,1}; set 2 covers it alone, sets 0 and 1 only together.
	// A filter rejecting every cover containing set 2 kills the whole
	// size-1 level, so the search must continue to size 2 and return
	// [0 1] — rejection may not end the search the way an accepted
	// minimum level does.
	cs := &coverSearch{
		universe: Universe(2),
		sets: []SubgoalSet{
			SubgoalSet(0).With(0),
			SubgoalSet(0).With(1),
			SubgoalSet(0).With(0).With(1),
		},
	}
	noSet2 := func(covers [][]int) [][]int {
		out := covers[:0]
		for _, c := range covers {
			uses2 := false
			for _, i := range c {
				if i == 2 {
					uses2 = true
				}
			}
			if !uses2 {
				out = append(out, c)
			}
		}
		return out
	}
	covers := cs.MinimumCovers(0, noSet2)
	if len(covers) != 1 || len(covers[0]) != 2 || covers[0][0] != 0 || covers[0][1] != 1 {
		t.Fatalf("MinimumCovers(0, no set 2) = %v, want [[0 1]]", covers)
	}
	// With everything rejected there is no acceptable cover at any size.
	rejectAll := func(covers [][]int) [][]int { return covers[:0] }
	if covers := cs.MinimumCovers(0, rejectAll); covers != nil {
		t.Fatalf("MinimumCovers(0, reject all) = %v, want nil", covers)
	}
}
