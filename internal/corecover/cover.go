package corecover

import (
	"encoding/binary"
	"sort"

	"viewplan/internal/obs"
)

// coverID identifies a cover — a set of chosen set indexes — as a value
// usable for map-key deduplication. Indexes below 64 pack into the lo
// word, so for typical families the id is a single uint64 comparison
// and building it allocates nothing; families with more than 64 sets
// spill the higher words into an immutable string (little-endian, no
// trailing zero words) so the id stays comparable and unambiguous.
// Packing is order-insensitive: no pre-sorting of chosen is needed.
type coverID struct {
	lo   uint64
	rest string
}

// coverIDOf builds the id for chosen (distinct, any order).
func coverIDOf(chosen []int) coverID {
	var id coverID
	var hi []uint64
	for _, i := range chosen {
		if i < 64 {
			id.lo |= 1 << uint(i)
			continue
		}
		w := i/64 - 1
		for len(hi) <= w {
			hi = append(hi, 0)
		}
		hi[w] |= 1 << uint(i%64)
	}
	if len(hi) > 0 {
		b := make([]byte, 8*len(hi))
		for wi, w := range hi {
			binary.LittleEndian.PutUint64(b[8*wi:], w)
		}
		id.rest = string(b)
	}
	return id
}

// coverSearch enumerates covers of a universe by a family of sets.
// Sets are given once; the search deduplicates covers (as index sets).
type coverSearch struct {
	universe SubgoalSet
	sets     []SubgoalSet
	// tracer receives the search span and node/prune counters; nil is a
	// no-op. The recursions count into the plain st fields and publish
	// once per search, keeping atomics off the per-node path. The tallies
	// live on the struct (not in locals) so the counting adds no heap
	// escapes to the recursions, which already capture cs.
	tracer *obs.Tracer
	st     searchStats
}

// searchStats are the per-search work tallies published to the tracer.
type searchStats struct {
	nodes, pruned, found int64
}

// publish flushes the current tallies to the tracer and resets them.
func (cs *coverSearch) publish() {
	//viewplan:tracer-field-ok publish runs once per search to flush batched tallies; the field exists to keep atomics and escapes off the per-node path (see the struct comment)
	tr := cs.tracer
	tr.Add(obs.CtrCoverNodes, cs.st.nodes)
	tr.Add(obs.CtrCoverPruned, cs.st.pruned)
	tr.Add(obs.CtrCoversFound, cs.st.found)
	cs.st = searchStats{}
}

// MinimumCovers returns every minimum-cardinality cover of the universe
// accepted by the verifier, each as a sorted slice of set indexes. The
// verifier may reject covers whose per-tuple mappings cannot be combined
// into a containment mapping (see the package comment on the Theorem 4.1
// side condition); filter receives each size level's candidate covers in
// enumeration order and returns the accepted ones, still in order.
// Passing a nil filter accepts everything. It returns nil if no
// acceptable cover exists.
//
// maxCovers > 0 caps the number returned, and the cap counts accepted
// covers only: the filter runs before any truncation, so a rejected
// candidate never displaces an acceptable later cover of the same size.
// (A filter may truncate to the cap itself once enough covers are
// accepted — the verifier's sequential path stops verifying there — but
// it must never drop an accepted cover while unverified candidates
// remain.) The cap applies within the minimum size level; covers of
// larger size are never returned, because a size level with at least one
// accepted cover ends the search.
func (cs *coverSearch) MinimumCovers(maxCovers int, filter func([][]int) [][]int) [][]int {
	//viewplan:tracer-field-ok once-per-search load at phase entry; the field batches per-node counters (see the struct comment)
	sp := cs.tracer.Start(obs.PhaseCoverSearch)
	defer sp.End()
	defer cs.publish()
	if cs.universe.IsEmpty() {
		return [][]int{{}}
	}
	// Iterative deepening on cover size: sizes are tiny (≤ #subgoals).
	maxSize := cs.universe.Count()
	if len(cs.sets) < maxSize {
		maxSize = len(cs.sets)
	}
	if !cs.coverable() {
		return nil
	}
	// Branch-and-bound lower bound: a cover of size k reaches at most
	// k×maxCoverage universe elements, so sizes below |universe| /
	// maxCoverage cannot cover and their (empty) levels are skipped
	// outright. The same bound prunes inside each level's descent.
	need := cs.universe.Count()
	k0 := (need + cs.maxCoverage() - 1) / cs.maxCoverage()
	for k := k0; k <= maxSize; k++ {
		covers := cs.coversOfSize(k, 0)
		cs.st.found += int64(len(covers))
		if filter != nil {
			covers = filter(covers)
		}
		if maxCovers > 0 && len(covers) > maxCovers {
			covers = covers[:maxCovers]
		}
		if len(covers) > 0 {
			return covers
		}
	}
	return nil
}

// coverable reports whether the union of all sets covers the universe.
func (cs *coverSearch) coverable() bool {
	var u SubgoalSet
	for _, s := range cs.sets {
		u = u.Union(s)
	}
	return u.Covers(cs.universe)
}

// maxCoverage returns the largest number of universe elements any single
// set covers (at least 1 when the family is coverable and the universe
// nonempty). It is the per-set bound behind MinimumCovers'
// branch-and-bound pruning.
func (cs *coverSearch) maxCoverage() int {
	best := 1
	for _, s := range cs.sets {
		if c := s.Intersect(cs.universe).Count(); c > best {
			best = c
		}
	}
	return best
}

// coversOfSize enumerates all covers using exactly k sets (no set chosen
// twice; subsets enumerated in increasing index order so each cover
// appears once). Three prunes bound the search, none of which changes
// the set or order of covers produced: a suffix-union feasibility check,
// dominance (a set adding nothing to the chosen union cannot appear in a
// minimum cover), and the branch-and-bound element count (the remaining
// picks cannot reach the still-missing elements). cs.st tallies nodes
// expanded and branches pruned.
func (cs *coverSearch) coversOfSize(k, maxCovers int) [][]int {
	n := len(cs.sets)
	// suffixUnion[i] = union of sets[i:].
	suffixUnion := make([]SubgoalSet, n+1)
	for i := n - 1; i >= 0; i-- {
		suffixUnion[i] = suffixUnion[i+1].Union(cs.sets[i])
	}
	maxCov := cs.maxCoverage()
	var out [][]int
	chosen := make([]int, 0, k)
	var rec func(start int, covered SubgoalSet) bool
	rec = func(start int, covered SubgoalSet) bool {
		cs.st.nodes++
		if len(chosen) == k {
			if covered.Covers(cs.universe) {
				out = append(out, append([]int(nil), chosen...))
				return maxCovers <= 0 || len(out) < maxCovers
			}
			return true
		}
		remaining := k - len(chosen)
		// Branch and bound: the remaining picks cover at most
		// remaining×maxCov missing elements.
		if cs.universe.Minus(covered).Count() > remaining*maxCov {
			cs.st.pruned++
			return true
		}
		for i := start; i+remaining <= n; i++ {
			// Prune: even taking everything from i on cannot cover.
			if !covered.Union(suffixUnion[i]).Covers(cs.universe) {
				cs.st.pruned++
				return true
			}
			// Dominance prune: the set's core adds nothing beyond the
			// chosen union (a cover of size k using a useless set is
			// never minimum: dropping it yields a cover of size k-1,
			// which the previous depth would have found).
			add := cs.sets[i].Minus(covered)
			if add.IsEmpty() {
				cs.st.pruned++
				continue
			}
			chosen = append(chosen, i)
			more := rec(i+1, covered.Union(cs.sets[i]))
			chosen = chosen[:len(chosen)-1]
			if !more {
				return false
			}
		}
		return true
	}
	rec(0, 0)
	return out
}

// IrredundantCovers enumerates every irredundant cover accepted by the
// verifier: a cover in which each chosen set covers at least one element
// no other chosen set covers. These correspond to the minimal rewritings
// using view tuples that CoreCover* searches (Section 5). maxCovers > 0
// caps the result; accept may be nil.
func (cs *coverSearch) IrredundantCovers(maxCovers int, accept func([]int) bool) [][]int {
	//viewplan:tracer-field-ok once-per-search load at phase entry; the field batches per-node counters (see the struct comment)
	sp := cs.tracer.Start(obs.PhaseCoverSearch)
	defer sp.End()
	defer cs.publish()
	if cs.universe.IsEmpty() {
		return [][]int{{}}
	}
	if !cs.coverable() {
		return nil
	}
	seen := make(map[coverID]struct{})
	var out [][]int
	chosen := make([]int, 0, len(cs.sets))
	var rec func(covered SubgoalSet) bool
	rec = func(covered SubgoalSet) bool {
		cs.st.nodes++
		if covered.Covers(cs.universe) {
			if !cs.irredundant(chosen) {
				cs.st.pruned++
				return true
			}
			key := coverIDOf(chosen)
			if _, dup := seen[key]; dup {
				return true
			}
			seen[key] = struct{}{}
			cs.st.found++
			sorted := append([]int(nil), chosen...)
			sort.Ints(sorted)
			if accept != nil && !accept(sorted) {
				return true
			}
			out = append(out, sorted)
			return maxCovers <= 0 || len(out) < maxCovers
		}
		e := covered.LowestMissing(cs.universe)
		for i, s := range cs.sets {
			if !s.Has(e) || contains(chosen, i) {
				continue
			}
			chosen = append(chosen, i)
			more := rec(covered.Union(s))
			chosen = chosen[:len(chosen)-1]
			if !more {
				return false
			}
		}
		return true
	}
	rec(0)
	return out
}

// irredundant reports whether every chosen set has a private element.
func (cs *coverSearch) irredundant(chosen []int) bool {
	for _, i := range chosen {
		others := SubgoalSet(0)
		for _, j := range chosen {
			if j != i {
				others = others.Union(cs.sets[j])
			}
		}
		if cs.sets[i].Intersect(cs.universe).Minus(others).IsEmpty() {
			return false
		}
	}
	return true
}

func contains(xs []int, x int) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}
