// Incremental RemoveView contract: the repaired catalog must be
// indistinguishable from a fresh CompileViews over the surviving
// definitions everywhere planning looks. Ids are compared by NAME, not
// by interned id — the incremental catalog shares its parent's
// append-only vocabulary, so its ids differ from a fresh catalog's.
package corecover

import (
	"testing"

	"viewplan/internal/cq"
	"viewplan/internal/views"
	"viewplan/internal/workload"
)

// requireCatalogEquiv asserts inc (an incremental RemoveView result) and
// fresh (CompileViews over the same surviving set) agree on every
// name-level observable: view order, definition keys, class structure,
// the representative work set, base predicates, and mention lists.
func requireCatalogEquiv(t *testing.T, label string, inc, fresh *Catalog) {
	t.Helper()
	incNames, freshNames := inc.Names(), fresh.Names()
	if len(incNames) != len(freshNames) {
		t.Fatalf("%s: %d views, fresh has %d", label, len(incNames), len(freshNames))
	}
	for i := range incNames {
		if incNames[i] != freshNames[i] {
			t.Fatalf("%s: view %d is %s, fresh has %s", label, i, incNames[i], freshNames[i])
		}
		if inc.keys[i] != fresh.keys[i] {
			t.Fatalf("%s: key %d differs for %s", label, i, incNames[i])
		}
	}
	if len(inc.classes) != len(fresh.classes) {
		t.Fatalf("%s: %d classes, fresh has %d", label, len(inc.classes), len(fresh.classes))
	}
	for i := range inc.classes {
		if len(inc.classes[i]) != len(fresh.classes[i]) {
			t.Fatalf("%s: class %d has %d members, fresh has %d",
				label, i, len(inc.classes[i]), len(fresh.classes[i]))
		}
		for j := range inc.classes[i] {
			if inc.classes[i][j].Name() != fresh.classes[i][j].Name() {
				t.Fatalf("%s: class %d member %d is %s, fresh has %s",
					label, i, j, inc.classes[i][j].Name(), fresh.classes[i][j].Name())
			}
		}
	}
	iw, fw := inc.work.Names(), fresh.work.Names()
	if len(iw) != len(fw) {
		t.Fatalf("%s: work has %d views, fresh has %d", label, len(iw), len(fw))
	}
	for i := range iw {
		if iw[i] != fw[i] {
			t.Fatalf("%s: work[%d] is %s, fresh has %s", label, i, iw[i], fw[i])
		}
	}
	// The prefilter index must describe the same predicates per
	// representative (by name — ids are vocabulary-private).
	for i := range iw {
		ip, fp := predNames(inc, inc.workPreds[i]), predNames(fresh, fresh.workPreds[i])
		if len(ip) != len(fp) {
			t.Fatalf("%s: workPreds[%d] has %d preds, fresh has %d", label, i, len(ip), len(fp))
		}
		for j := range ip {
			if ip[j] != fp[j] {
				t.Fatalf("%s: workPreds[%d][%d] is %s, fresh has %s", label, i, j, ip[j], fp[j])
			}
		}
	}
	ib, fb := inc.BasePreds(), fresh.BasePreds()
	if len(ib) != len(fb) {
		t.Fatalf("%s: BasePreds %v, fresh %v", label, ib, fb)
	}
	for i := range ib {
		if ib[i] != fb[i] {
			t.Fatalf("%s: BasePreds %v, fresh %v", label, ib, fb)
		}
	}
	for _, p := range fb {
		im, fm := inc.ViewsMentioning(p), fresh.ViewsMentioning(p)
		if len(im) != len(fm) {
			t.Fatalf("%s: ViewsMentioning(%s) %v, fresh %v", label, p, im, fm)
		}
		for i := range im {
			if im[i] != fm[i] {
				t.Fatalf("%s: ViewsMentioning(%s) %v, fresh %v", label, p, im, fm)
			}
		}
	}
}

func predNames(c *Catalog, ids []uint32) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = c.PredName(id)
	}
	return out
}

// TestRemoveViewMatchesFreshCompile removes every view, one at a time,
// from a hand-built set that exercises all three repair cases —
// non-representative member, sole-member class, and removed
// representative (forcing a class re-slot) — and checks the incremental
// catalog against a fresh compile, structurally and through planning.
func TestRemoveViewMatchesFreshCompile(t *testing.T) {
	vs := views.MustNewSet(
		cq.MustParseQuery("v1(X, Z) :- e0(X, Y), e1(Y, Z)"),
		cq.MustParseQuery("v2(X, Y) :- e2(X, Y)"),
		cq.MustParseQuery("v3(A, C) :- e0(A, B), e1(B, C)"), // ≡ v1
		cq.MustParseQuery("v4(X, Z) :- e1(X, Y), e2(Y, Z)"),
		cq.MustParseQuery("v5(A, C) :- e1(A, B), e2(B, C)"), // ≡ v4
		cq.MustParseQuery("v6(P, R) :- e0(P, Q), e1(Q, R)"), // ≡ v1
	)
	cat, err := CompileViews(vs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := cq.MustParseQuery("q(X, W) :- e0(X, Y), e1(Y, Z), e2(Z, W)")
	for _, name := range vs.Names() {
		inc, err := cat.RemoveView(name)
		if err != nil {
			t.Fatal(err)
		}
		if inc.Generation() <= cat.Generation() {
			t.Fatalf("remove %s: generation not fresh", name)
		}
		rest, err := vs.Remove(name)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := CompileViews(rest, Options{})
		if err != nil {
			t.Fatal(err)
		}
		requireCatalogEquiv(t, "remove "+name, inc, fresh)

		got, err := CoreCover(q, nil, Options{Parallelism: 1, Catalog: inc})
		if err != nil {
			t.Fatal(err)
		}
		want, err := CoreCover(q, nil, Options{Parallelism: 1, Catalog: fresh})
		if err != nil {
			t.Fatal(err)
		}
		requireResultsEqual(t, "plan after remove "+name, want, got)
	}

	// Chained removals exercise the shared-vocabulary lineage: ids stay
	// stable while the name-level views drop out one by one.
	chain := cat
	remaining := append([]string(nil), vs.Names()...)
	for _, name := range []string{"v4", "v5", "v2"} {
		var err error
		chain, err = chain.RemoveView(name)
		if err != nil {
			t.Fatal(err)
		}
		kept := remaining[:0:0]
		for _, n := range remaining {
			if n != name {
				kept = append(kept, n)
			}
		}
		remaining = kept
		rest, err := vs.Subset(remaining)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := CompileViews(rest, Options{})
		if err != nil {
			t.Fatal(err)
		}
		requireCatalogEquiv(t, "chain remove "+name, chain, fresh)
	}
	// A predicate mentioned only by removed views (e2, after v4/v5/v2 are
	// gone) resolves through the shared interner but reports no mentions
	// and leaves BasePreds.
	if got := chain.ViewsMentioning("e2"); len(got) != 0 {
		t.Fatalf("e2 still mentioned by %v after its views were removed", got)
	}
	if _, ok := chain.LookupPred("e2"); !ok {
		t.Fatal("e2 no longer resolves: the lineage should share its interner")
	}
	for _, p := range chain.BasePreds() {
		if p == "e2" {
			t.Fatal("e2 still in BasePreds after its views were removed")
		}
	}
}

// TestRemoveViewMatchesFreshCompileWorkload repeats the check over a
// generated workload large enough that class membership is not
// hand-picked, removing every view in turn.
func TestRemoveViewMatchesFreshCompileWorkload(t *testing.T) {
	inst, err := workload.Generate(workload.Config{Shape: workload.Star, QuerySubgoals: 6, NumViews: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := CompileViews(inst.Views, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range inst.Views.Names() {
		inc, err := cat.RemoveView(name)
		if err != nil {
			t.Fatal(err)
		}
		rest, err := inst.Views.Remove(name)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := CompileViews(rest, Options{})
		if err != nil {
			t.Fatal(err)
		}
		requireCatalogEquiv(t, "remove "+name, inc, fresh)

		got, err := CoreCover(inst.Query, nil, Options{Parallelism: 1, CoverShards: 1, Catalog: inc})
		if err != nil {
			t.Fatal(err)
		}
		want, err := CoreCover(inst.Query, nil, Options{Parallelism: 1, Catalog: fresh})
		if err != nil {
			t.Fatal(err)
		}
		requireResultsEqual(t, "plan after remove "+name, want, got)
	}
}
