package corecover

import (
	"testing"

	"viewplan/internal/cq"
	"viewplan/internal/engine"
)

// TestExecutionEquivalence is the end-to-end property behind Theorem 3.1:
// every rewriting CoreCover emits, evaluated over the materialized views,
// returns exactly the relation the original query returns over the base
// data. Each corpus instance gets its own randomly filled database; the
// base relations cover both the query's and the views' body predicates
// (a view may scan a relation the query never mentions).
func TestExecutionEquivalence(t *testing.T) {
	par := testParallelism(t)
	evaluated := 0
	for n, inst := range diffCorpus(t) {
		res, err := CoreCover(inst.Query, inst.Views, Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rewritings) == 0 {
			continue
		}

		db := engine.NewDatabase()
		// A small domain forces join collisions so the answer relations
		// are rarely empty and the comparison has teeth.
		gen := engine.NewDataGen(int64(7000+n), 4)
		gen.FillForQuery(db, inst.Query, 12)
		for _, v := range inst.Views.Views {
			gen.FillForQuery(db, v.Def, 12)
		}
		want, err := db.Evaluate(inst.Query)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.MaterializeViews(inst.Views); err != nil {
			t.Fatal(err)
		}
		for _, p := range res.Rewritings {
			got, err := db.Evaluate(p)
			if err != nil {
				t.Fatalf("evaluating rewriting %s of %s: %v", p, inst.Query, err)
			}
			requireSameRelation(t, inst.Query, p, want, got)
		}
		evaluated++
	}
	if evaluated < 40 {
		t.Fatalf("corpus too thin: only %d instances were evaluated", evaluated)
	}
}

func requireSameRelation(t *testing.T, q, p *cq.Query, want, got *engine.Relation) {
	t.Helper()
	a, b := want.SortedRows(), got.SortedRows()
	if len(a) != len(b) {
		t.Fatalf("rewriting %s of %s: %d rows, want %d", p, q, len(b), len(a))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("rewriting %s of %s: row %d arity %d, want %d", p, q, i, len(b[i]), len(a[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("rewriting %s of %s: row %d is %v, want %v", p, q, i, b[i], a[i])
			}
		}
	}
}
