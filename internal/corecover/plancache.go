// Concurrent plan cache: completed Results memoized under the query's
// exact canonical key, the catalog generation, and the option
// fingerprint. The soundness argument (DESIGN.md §13): ExactCanonicalKey
// equality means the queries are identical up to variable renaming and
// body reordering, the generation pins the view set, and the fingerprint
// pins every Options field that changes what a run produces — so the
// cached Result, rebased onto the arrival's variable names through the
// canonical labeling's witnessing bijection, is exactly a Result for the
// arriving query. Queries the key cannot speak for (oversized bodies,
// built-in comparisons — the same rule as the containment HomCache) and
// queries inside the planner's reserved "_"-variable namespace bypass
// the cache entirely.
package corecover

import (
	"container/list"
	"sort"
	"strings"
	"sync"

	"viewplan/internal/cq"
	"viewplan/internal/obs"
	"viewplan/internal/views"
)

// optionsFingerprint is the part of Options that changes what a run
// produces. Tracer and Parallelism are deliberately absent: tracing
// never alters the Result, and the parallel paths are proven
// byte-identical to the sequential ones (the PR 2 differential
// guarantee), so runs differing only in those fields share entries.
type optionsFingerprint struct {
	disableViewGrouping  bool
	disableTupleGrouping bool
	skipVerification     bool
	maxRewritings        int
}

func fingerprintOf(o Options) optionsFingerprint {
	return optionsFingerprint{
		disableViewGrouping:  o.DisableViewGrouping,
		disableTupleGrouping: o.DisableTupleGrouping,
		skipVerification:     o.SkipVerification,
		maxRewritings:        o.MaxRewritings,
	}
}

// planKey identifies one cached plan: which algorithm (CoreCover or
// CoreCover*), against which catalog generation, under which option
// fingerprint, for which query up to renaming and body reordering.
type planKey struct {
	star  bool
	gen   uint64
	fp    optionsFingerprint
	canon string
}

// cacheEntry is one memoized plan. res is a private deep clone — the
// cache never hands out or retains caller-visible pointers — and vars is
// the canonical labeling of the query res was computed for: vars[i] is
// the variable the canonical form numbers Vi, which is what lets a hit
// for an alpha-renamed arrival be rebased (see rebase). tpl is the
// positional rename template instantiate uses to serve hits without any
// per-hit substitution-map lookups.
type cacheEntry struct {
	vars []cq.Var
	res  *Result
	tpl  *entryTemplate
}

// planCacheStripes is the lock-stripe count of a large PlanCache. Keys
// spread across stripes by a hash of their canonical form, so
// concurrent planners contend on one stripe's mutex instead of a single
// global lock.
const planCacheStripes = 8

// planCacheStripeMin is the smallest capacity that stripes. Below it
// the cache keeps one stripe: per-stripe capacities under ~8 entries
// make hash imbalance dominate, and a single stripe preserves the exact
// global LRU order the small-cache tests (and tuning intuition) rely
// on. At or above it, eviction is LRU within each stripe — the
// capacity bound still holds exactly (stripe capacities sum to the
// cache capacity), only the victim choice is per-stripe.
const planCacheStripeMin = 64

// PlanCache is a size-bounded concurrent memo of planning Results,
// shared by any number of goroutines planning against the same resident
// Catalog. Eviction is LRU (global below planCacheStripeMin, per-stripe
// above — see planCacheStripeMin). The zero capacity stores nothing
// (every lookup misses), which keeps capacity a pure tuning knob.
//
// Counters are ticked on the per-run Tracer only, never on obs.Global:
// a registry fed by per-request snapshots then reconciles exactly with
// the sum of those snapshots even under concurrent mutation (the
// registry invariant the service soak tests assert, for both the
// single-stripe and the striped configuration).
type PlanCache struct {
	cap     int
	stripes []planStripe
}

// planStripe is one independently locked segment: its own map, its own
// LRU list, its own share of the capacity.
type planStripe struct {
	mu  sync.Mutex
	cap int
	m   map[planKey]*list.Element
	lru list.List // front = most recently used; values are *lruNode
}

type lruNode struct {
	key planKey
	ent *cacheEntry
}

// NewPlanCache returns a plan cache bounded to capacity entries.
// capacity <= 0 yields a cache that stores nothing.
func NewPlanCache(capacity int) *PlanCache {
	n := 1
	if capacity >= planCacheStripeMin {
		n = planCacheStripes
	}
	c := &PlanCache{cap: capacity, stripes: make([]planStripe, n)}
	base, extra := capacity/n, capacity%n
	for i := range c.stripes {
		s := &c.stripes[i]
		s.cap = base
		if i < extra {
			s.cap++
		}
		s.m = make(map[planKey]*list.Element)
		s.lru.Init()
	}
	return c
}

// Capacity returns the cache's entry bound.
func (c *PlanCache) Capacity() int {
	if c == nil {
		return 0
	}
	return c.cap
}

// Len returns the current number of cached plans.
func (c *PlanCache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// stripeFor picks the key's stripe: FNV-1a over the canonical form,
// mixed with the catalog generation. Alloc-free — the hit path's
// allocation budget is gated.
func (c *PlanCache) stripeFor(key planKey) *planStripe {
	if len(c.stripes) == 1 {
		return &c.stripes[0]
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key.canon); i++ {
		h ^= uint64(key.canon[i])
		h *= prime64
	}
	h ^= key.gen
	h *= prime64
	return &c.stripes[h%uint64(len(c.stripes))]
}

// lookup returns the entry for key, marking it most recently used
// within its stripe.
func (c *PlanCache) lookup(key planKey) *cacheEntry {
	if c == nil {
		return nil
	}
	s := c.stripeFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		return nil
	}
	s.lru.MoveToFront(el)
	return el.Value.(*lruNode).ent
}

// insert stores an entry, evicting the stripe's least recently used
// plan when the stripe is over its share of the capacity. Two
// goroutines racing to insert the same key (both missed, both planned)
// keep the first entry: planning is deterministic, so both hold
// equivalent results and replacing would only churn the LRU list.
// Evictions tick CtrPlanCacheEvict on tr (nil-safe).
func (c *PlanCache) insert(key planKey, ent *cacheEntry, tr *obs.Tracer) {
	if c == nil || c.cap <= 0 {
		return
	}
	s := c.stripeFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; ok {
		return
	}
	s.m[key] = s.lru.PushFront(&lruNode{key: key, ent: ent})
	for len(s.m) > s.cap {
		back := s.lru.Back()
		if back == nil {
			break
		}
		s.lru.Remove(back)
		delete(s.m, back.Value.(*lruNode).key)
		tr.Add(obs.CtrPlanCacheEvict, 1)
	}
}

// usesReservedVars reports whether any variable of q lives in the
// planner's reserved "_" namespace. Cached artifacts contain fresh
// internal variables ("_E…" expansion existentials, "_X…" from view
// expansion); rebasing a cached Result onto a query that itself uses
// such names could capture them, so those queries bypass the cache.
func usesReservedVars(q *cq.Query) bool {
	reserved := func(t cq.Term) bool {
		v, ok := t.(cq.Var)
		return ok && strings.HasPrefix(string(v), "_")
	}
	for _, t := range q.Head.Args {
		if reserved(t) {
			return true
		}
	}
	for _, a := range q.Body {
		for _, t := range a.Args {
			if reserved(t) {
				return true
			}
		}
	}
	return false
}

// rebase deep-clones a Result under the variable bijection sending the
// source query's canonical labeling onto the target's (srcVars[i] ->
// dstVars[i]). For a repeat of the byte-identical query the bijection is
// the identity and the clone reproduces the cold Result byte for byte —
// the cache-differential harness's contract. View objects are shared
// (immutable by construction); everything renameable is cloned, so a
// cached entry never aliases caller-visible state.
func rebase(src *Result, srcVars, dstVars []cq.Var) *Result {
	sigma := make(cq.Subst, len(srcVars))
	for i, v := range srcVars {
		sigma[v] = dstVars[i]
	}
	out := &Result{
		Query:        sigma.Query(src.Query),
		MinimalQuery: sigma.Query(src.MinimalQuery),
	}
	if src.ViewClasses != nil {
		out.ViewClasses = make([][]*views.View, len(src.ViewClasses))
		for i, cl := range src.ViewClasses {
			out.ViewClasses[i] = append([]*views.View(nil), cl...)
		}
	}
	if src.Tuples != nil {
		out.Tuples = make([]views.Tuple, len(src.Tuples))
		for i, t := range src.Tuples {
			out.Tuples[i] = views.Tuple{View: t.View, Atom: sigma.Atom(t.Atom)}
		}
	}
	if src.Classes != nil {
		out.Classes = make([]TupleClass, len(src.Classes))
		for i, tc := range src.Classes {
			out.Classes[i] = rebaseClass(tc, sigma)
		}
	}
	if src.Rewritings != nil {
		out.Rewritings = make([]*cq.Query, len(src.Rewritings))
		for i, rw := range src.Rewritings {
			out.Rewritings[i] = sigma.Query(rw)
		}
	}
	if src.Covers != nil {
		out.Covers = make([][]int, len(src.Covers))
		for i, cov := range src.Covers {
			out.Covers[i] = append([]int(nil), cov...)
		}
	}
	return out
}

// rebaseClass renames one tuple class. Core mappings send covered-query
// variables to expansion terms: domains are query variables (renamed),
// images are either query variables (renamed) or fresh "_E" existentials
// (outside sigma's domain, preserved — the bypass rule guarantees the
// arriving query cannot capture them).
func rebaseClass(tc TupleClass, sigma cq.Subst) TupleClass {
	out := TupleClass{Core: rebaseCore(tc.Core, sigma)}
	out.Members = make([]views.Tuple, len(tc.Members))
	for i, m := range tc.Members {
		out.Members[i] = views.Tuple{View: m.View, Atom: sigma.Atom(m.Atom)}
	}
	return out
}

func rebaseCore(core TupleCore, sigma cq.Subst) TupleCore {
	out := TupleCore{
		Tuple:   views.Tuple{View: core.Tuple.View, Atom: sigma.Atom(core.Tuple.Atom)},
		Covered: core.Covered,
	}
	if core.Mapping != nil {
		out.Mapping = make(cq.Subst, len(core.Mapping))
		for v, img := range core.Mapping { //viewplan:nondet-ok each binding is renamed independently into its own key's slot; iteration order cannot reach the result
			nv := v
			if img2, ok := sigma[v]; ok {
				nv = img2.(cq.Var) // sigma is a variable bijection
			}
			out.Mapping[nv] = sigma.Term(img)
		}
	}
	if core.Expansion != nil {
		out.Expansion = sigma.Atoms(core.Expansion)
	}
	return out
}

// entryTemplate is the positional form of an entry's renameable term
// slots, precomputed at insert so hits rename by array index instead of
// substitution-map lookups (the map probes dominated the hit-path CPU
// profile). refs holds one entry per term slot of the stored Result, in
// the exact order instantiate re-walks it: ref >= 0 names dstVars[ref],
// ref < 0 names lits[-1-ref] (a constant, or a variable outside the
// canonical labeling — the "_E" existentials the bypass rule protects).
// mapPairs carries each class's core Mapping in sorted-key order, since
// a map cannot be walked in lockstep deterministically.
type entryTemplate struct {
	refs     []int32
	lits     []cq.Term
	mapPairs [][]tplPair
}

type tplPair struct{ key, val int32 }

func varsEqual(a, b []cq.Var) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildTemplate walks res (which instantiate will re-walk in the same
// order) recording for every atom argument whether it is positional in
// vars or a literal. res must be the entry's own stored clone.
func buildTemplate(res *Result, vars []cq.Var) *entryTemplate {
	idx := make(map[cq.Var]int32, len(vars))
	for i, v := range vars {
		idx[v] = int32(i)
	}
	t := &entryTemplate{}
	refOf := func(term cq.Term) int32 {
		if v, ok := term.(cq.Var); ok {
			if i, ok := idx[v]; ok {
				return i
			}
		}
		t.lits = append(t.lits, term)
		return int32(-len(t.lits))
	}
	atom := func(a cq.Atom) {
		for _, term := range a.Args {
			t.refs = append(t.refs, refOf(term))
		}
	}
	atoms := func(as []cq.Atom) {
		for _, a := range as {
			atom(a)
		}
	}
	query := func(q *cq.Query) {
		atom(q.Head)
		atoms(q.Body)
	}
	query(res.MinimalQuery)
	for _, tu := range res.Tuples {
		atom(tu.Atom)
	}
	t.mapPairs = make([][]tplPair, len(res.Classes))
	for i, tc := range res.Classes {
		atom(tc.Core.Tuple.Atom)
		atoms(tc.Core.Expansion)
		for _, m := range tc.Members {
			atom(m.Atom)
		}
		keys := make([]cq.Var, 0, len(tc.Core.Mapping))
		for v := range tc.Core.Mapping {
			keys = append(keys, v)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		pairs := make([]tplPair, len(keys))
		for j, v := range keys {
			pairs[j] = tplPair{key: refOf(v), val: refOf(tc.Core.Mapping[v])}
		}
		t.mapPairs[i] = pairs
	}
	for _, rw := range res.Rewritings {
		query(rw)
	}
	return t
}

// instantiate serves one hit: a private Result equal, field for field,
// to what rebase(e.res, e.vars, dstVars) returns — the equivalence the
// cache-differential harness pins — but built from the positional
// template with a single term slab shared by every atom (three-index
// subslicing keeps the atoms' Args from aliasing each other). Query is
// left nil: the hit path installs the arrival verbatim.
//
// When the arrival's canonical labeling spells the very same variables
// as the stored entry — every textually identical replay, the dominant
// steady-state traffic — the renaming is the identity and instantiate
// returns a shallow copy sharing the entry's immutable substructure
// outright. Entries are never written after insert and callers receive
// Results to read, not to edit (the same contract the catalog's shared
// *View pointers already rely on), so the sharing is invisible except
// to the allocator.
func (e *cacheEntry) instantiate(dstVars []cq.Var) *Result {
	if varsEqual(e.vars, dstVars) {
		out := *e.res
		return &out
	}
	src, t := e.res, e.tpl
	// Box each destination variable into the Term interface once, not
	// once per slot that names it — the boxing, not the copying, is the
	// allocation.
	dst := make([]cq.Term, len(dstVars))
	for i, v := range dstVars {
		dst[i] = v
	}
	slab := make([]cq.Term, len(t.refs))
	pos := 0
	term := func(ref int32) cq.Term {
		if ref >= 0 {
			return dst[ref]
		}
		return t.lits[-1-ref]
	}
	atom := func(a cq.Atom) cq.Atom {
		n := len(a.Args)
		args := slab[pos : pos+n : pos+n]
		for i := range args {
			args[i] = term(t.refs[pos+i])
		}
		pos += n
		return cq.Atom{Pred: a.Pred, Args: args}
	}
	atoms := func(as []cq.Atom) []cq.Atom {
		if as == nil {
			return nil
		}
		out := make([]cq.Atom, len(as))
		for i, a := range as {
			out[i] = atom(a)
		}
		return out
	}
	query := func(q *cq.Query) *cq.Query {
		return &cq.Query{Head: atom(q.Head), Body: atoms(q.Body)}
	}
	out := &Result{MinimalQuery: query(src.MinimalQuery)}
	if src.ViewClasses != nil {
		out.ViewClasses = make([][]*views.View, len(src.ViewClasses))
		for i, cl := range src.ViewClasses {
			out.ViewClasses[i] = append([]*views.View(nil), cl...)
		}
	}
	if src.Tuples != nil {
		out.Tuples = make([]views.Tuple, len(src.Tuples))
		for i, tu := range src.Tuples {
			out.Tuples[i] = views.Tuple{View: tu.View, Atom: atom(tu.Atom)}
		}
	}
	if src.Classes != nil {
		out.Classes = make([]TupleClass, len(src.Classes))
		for i, tc := range src.Classes {
			oc := TupleClass{Core: TupleCore{
				Tuple:   views.Tuple{View: tc.Core.Tuple.View, Atom: atom(tc.Core.Tuple.Atom)},
				Covered: tc.Core.Covered,
			}}
			oc.Core.Expansion = atoms(tc.Core.Expansion)
			oc.Members = make([]views.Tuple, len(tc.Members))
			for j, m := range tc.Members {
				oc.Members[j] = views.Tuple{View: m.View, Atom: atom(m.Atom)}
			}
			if tc.Core.Mapping != nil {
				m := make(cq.Subst, len(t.mapPairs[i]))
				for _, p := range t.mapPairs[i] {
					m[term(p.key).(cq.Var)] = term(p.val)
				}
				oc.Core.Mapping = m
			}
			out.Classes[i] = oc
		}
	}
	if src.Rewritings != nil {
		out.Rewritings = make([]*cq.Query, len(src.Rewritings))
		for i, rw := range src.Rewritings {
			out.Rewritings[i] = query(rw)
		}
	}
	if src.Covers != nil {
		out.Covers = make([][]int, len(src.Covers))
		for i, cov := range src.Covers {
			out.Covers[i] = append([]int(nil), cov...)
		}
	}
	return out
}

// cloneEntry wraps a freshly planned Result for insertion: a private
// deep clone (rebase under the identity bijection), a private copy of
// the query's canonical labeling, and the hit-path rename template over
// the stored clone.
func cloneEntry(r *Result, vars []cq.Var) *cacheEntry {
	own := make([]cq.Var, len(vars))
	copy(own, vars)
	res := rebase(r, own, own)
	return &cacheEntry{vars: own, res: res, tpl: buildTemplate(res, own)}
}
