// Package experiments regenerates every figure of the paper's Section 7:
// for star and chain queries it sweeps the number of views and measures
// (a) the wall-clock time for CoreCover to produce all globally-minimal
// rewritings (Figures 6 and 8) and (b) the number of view equivalence
// classes, view tuples, and representative view tuples (Figures 7 and 9).
// Queries without rewritings are skipped, 40 queries are averaged per
// point, and the timed region includes equivalence-class grouping —
// matching the paper's protocol.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"viewplan"
	"viewplan/internal/corecover"
	"viewplan/internal/cost"
	"viewplan/internal/engine"
	"viewplan/internal/obs"
	"viewplan/internal/views"
	"viewplan/internal/workload"
)

// Point is one x-axis position of a sweep with averaged measurements.
type Point struct {
	// NumViews is the x coordinate.
	NumViews int `json:"num_views"`
	// AvgMillis is the mean CoreCover time (all GMRs) over the queries
	// that had rewritings.
	AvgMillis float64 `json:"avg_ms"`
	// MaxMillis is the worst query's time.
	MaxMillis float64 `json:"max_ms"`
	// P50Millis, P90Millis and P99Millis are latency percentiles of the
	// per-query CoreCover times at this point, estimated from a
	// log-bucketed histogram (relative error ≤ 6.25%; see obs.Histogram).
	// The mean of a sweep point hides stragglers; the paper's max curve
	// shows only the single worst query — the percentiles sit between.
	P50Millis float64 `json:"p50_ms"`
	P90Millis float64 `json:"p90_ms"`
	P99Millis float64 `json:"p99_ms"`
	// AvgViewClasses is the mean number of view equivalence classes
	// (Figures 7(a)/9(a), "number of representative views").
	AvgViewClasses float64 `json:"avg_view_classes"`
	// AvgAllTuples is the mean number of view tuples computed from all
	// views (Figures 7(b)/9(b), "all view tuples").
	AvgAllTuples float64 `json:"avg_all_tuples"`
	// AvgRepTuples is the mean number of representative view tuples
	// (distinct tuple-core classes).
	AvgRepTuples float64 `json:"avg_rep_tuples"`
	// AvgGMRs and AvgGMRSize describe the rewritings found.
	AvgGMRs    float64 `json:"avg_gmrs"`
	AvgGMRSize float64 `json:"avg_gmr_size"`
	// WithRewriting counts the queries that had a rewriting, out of
	// Queries attempted.
	WithRewriting int `json:"with_rewriting"`
	Queries       int `json:"queries"`
	// Counters are the summed planner work counters over the queries with
	// rewritings (SweepConfig.Trace only; nil otherwise). Keys are the
	// obs counter names, e.g. "hom_searches", "cover_nodes".
	Counters map[string]int64 `json:"counters,omitempty"`
	// PhaseNanos are the summed per-phase wall times over the same
	// queries, flattened by phase name (SweepConfig.Trace only). Each
	// phase's time includes its children; recursing phases count nested
	// invocations at every level, so these columns don't sum to wall
	// time — PhaseSelfNanos does.
	PhaseNanos map[string]int64 `json:"phase_nanos,omitempty"`
	// PhaseSelfNanos are the summed per-phase self times (children
	// excluded); they telescope to the total observed time.
	PhaseSelfNanos map[string]int64 `json:"phase_self_nanos,omitempty"`
	// AvgPlanMillis is the mean end-to-end PlanQuery time under
	// SweepConfig.CostModel (zero when cost planning is off).
	AvgPlanMillis float64 `json:"avg_plan_ms,omitempty"`
	// MaxPlanMillis is the worst query's planning time.
	MaxPlanMillis float64 `json:"max_plan_ms,omitempty"`
	// PlanP50Millis, PlanP90Millis and PlanP99Millis are the planning
	// latency percentiles, like P50Millis for the CostModel runs.
	PlanP50Millis float64 `json:"plan_p50_ms,omitempty"`
	PlanP90Millis float64 `json:"plan_p90_ms,omitempty"`
	PlanP99Millis float64 `json:"plan_p99_ms,omitempty"`
	// AvgPlanCost is the mean chosen-plan cost under the cost model.
	AvgPlanCost float64 `json:"avg_plan_cost,omitempty"`
	// PlanCounters / PlanPhaseNanos / PlanPhaseSelfNanos aggregate the
	// cost-planning runs' observability snapshots (engine counters such
	// as join_probe_rows, ir_cache_hits live here; SweepConfig.Trace and
	// CostModel only).
	PlanCounters       map[string]int64 `json:"plan_counters,omitempty"`
	PlanPhaseNanos     map[string]int64 `json:"plan_phase_nanos,omitempty"`
	PlanPhaseSelfNanos map[string]int64 `json:"plan_phase_self_nanos,omitempty"`
}

// SweepConfig parameterizes one figure-generating sweep.
type SweepConfig struct {
	Shape workload.Shape
	// Nondistinguished is 0 for the (a) figures, 1 for the (b) variants.
	Nondistinguished int
	// ViewCounts is the x axis, e.g. 100, 200, ..., 1000.
	ViewCounts []int
	// QueriesPerPoint is the number of random queries averaged per x
	// (paper: 40).
	QueriesPerPoint int
	// QuerySubgoals is the query body size (paper: 8).
	QuerySubgoals int
	// Seed offsets the deterministic instance seeds.
	Seed int64
	// Options forwards CoreCover options (used by the grouping ablation).
	Options corecover.Options
	// Parallelism runs that many queries concurrently per point (0 or 1 =
	// sequential). Instances are seeded deterministically, so aggregates
	// are identical to a sequential run; per-query wall times are still
	// measured individually. Note that with Trace set and Parallelism > 1
	// the process-global counters (hom_searches, homs_found) may be
	// attributed to the wrong concurrent query; their sums stay exact.
	Parallelism int
	// Trace gives every query its own obs.Tracer and aggregates the work
	// counters and phase times onto each Point (Counters, PhaseNanos).
	// Tracing adds a little overhead to the timed region, so leave it off
	// when reproducing the paper's timing figures.
	Trace bool
	// CostModel, when nonzero (cost.M2 or cost.M3), additionally runs the
	// one-shot planner per query that has a rewriting: base relations are
	// filled with DataRows synthetic rows each over a DataDomain-value
	// domain, views are materialized, and viewplan.PlanQuery is timed
	// end to end (rewriting generation + the engine-backed cost search).
	// The M2/M3 sweep of the Figure 6(a) workload in BENCH_engine.json is
	// produced this way. Planning measurements land in the Point's
	// AvgPlanMillis/AvgPlanCost and, with Trace, PlanCounters and
	// PlanPhaseNanos.
	CostModel cost.Model
	// Execute, when non-empty, also executes each chosen plan after a
	// CostModel run: "materialized" replays the JoinStep chain the cost
	// simulation measured, "stream" runs the streaming iterator path,
	// "symmetric" additionally makes the first join a symmetric hash
	// join. Execution residency then lands in the process histograms
	// (peak_resident_rows, streamed_rows_per_join), visible through
	// Registry and benchviews -metrics / -registry.
	Execute string
	// DataRows and DataDomain size the synthetic data for CostModel runs
	// (default 100 rows per base relation over 100 distinct values, which
	// keeps star-join fan-out near 1).
	DataRows   int
	DataDomain int
	// Registry, when non-nil, accumulates the sweep into process-lifetime
	// telemetry: every CoreCover run's latency lands in the
	// corecover_latency_ns histogram (with its counters and phase times
	// when Trace is on), and CostModel runs record through
	// PlanRequest.Registry (requests, plan_latency_ns,
	// rewritings_considered). Serve it with obs.Handler to watch a sweep
	// live (`benchviews -registry`).
	Registry *obs.Registry
}

// DefaultViewCounts is the paper's x axis: 100 to 1000 views.
func DefaultViewCounts() []int {
	out := make([]int, 0, 10)
	for n := 100; n <= 1000; n += 100 {
		out = append(out, n)
	}
	return out
}

// Normalize fills zero fields with the paper's protocol values.
func (c SweepConfig) Normalize() SweepConfig {
	if len(c.ViewCounts) == 0 {
		c.ViewCounts = DefaultViewCounts()
	}
	if c.QueriesPerPoint == 0 {
		c.QueriesPerPoint = 40
	}
	if c.QuerySubgoals == 0 {
		c.QuerySubgoals = 8
	}
	if c.DataRows == 0 {
		c.DataRows = 100
	}
	if c.DataDomain == 0 {
		c.DataDomain = 100
	}
	return c
}

// queryResult holds one query's measurements for aggregation.
type queryResult struct {
	ok                     bool
	ms                     float64
	ns                     int64
	viewClasses, repTuples int
	gmrs, gmrSize          int
	allTuples              int
	stats                  *obs.Snapshot
	planned                bool
	planMs                 float64
	planNs                 int64
	planCost               int
	planStats              *obs.Snapshot
	err                    error
}

// Run executes the sweep and returns one Point per view count.
func Run(cfg SweepConfig) ([]Point, error) {
	cfg = cfg.Normalize()
	out := make([]Point, 0, len(cfg.ViewCounts))
	for xi, nv := range cfg.ViewCounts {
		pt := Point{NumViews: nv, Queries: cfg.QueriesPerPoint}
		results := make([]queryResult, cfg.QueriesPerPoint)
		runOne := func(qi int) queryResult {
			inst, err := workload.Generate(workload.Config{
				Shape:            cfg.Shape,
				QuerySubgoals:    cfg.QuerySubgoals,
				NumViews:         nv,
				Nondistinguished: cfg.Nondistinguished,
				Seed:             cfg.Seed + int64(xi*10000+qi),
			})
			if err != nil {
				return queryResult{err: err}
			}
			opts := cfg.Options
			if cfg.Trace {
				opts.Tracer = obs.New()
			}
			start := time.Now() //viewplan:nondet-ok wall time is reported to humans in the experiment tables and never feeds back into planning
			res, err := corecover.CoreCover(inst.Query, inst.Views, opts)
			if err != nil {
				return queryResult{err: err}
			}
			elapsed := time.Since(start) //viewplan:nondet-ok wall time is reported to humans in the experiment tables and never feeds back into planning
			if cfg.Registry != nil {
				cfg.Registry.RecordLatency(obs.HistCoreCoverLatency, elapsed)
				cfg.Registry.Absorb(res.PlanningStats)
			}
			if len(res.Rewritings) == 0 {
				return queryResult{} // the paper ignores queries without rewritings
			}
			qr := queryResult{
				ok:          true,
				ms:          float64(elapsed.Microseconds()) / 1000.0,
				ns:          elapsed.Nanoseconds(),
				viewClasses: len(res.ViewClasses),
				repTuples:   countNonEmptyClasses(res),
				gmrs:        len(res.Rewritings),
				gmrSize:     res.GMRSize(),
				// "All view tuples" counts tuples from the full, ungrouped
				// view set (the upper curve of Figures 7(b)/9(b)).
				allTuples: len(views.ComputeTuples(res.MinimalQuery, inst.Views)),
				stats:     res.PlanningStats,
			}
			if cfg.CostModel != 0 {
				pr, err := planOne(cfg, inst, qi)
				if err != nil {
					return queryResult{err: err}
				}
				qr.planned = pr.planned
				qr.planMs, qr.planNs = pr.planMs, pr.planNs
				qr.planCost, qr.planStats = pr.planCost, pr.planStats
			}
			return qr
		}
		if cfg.Parallelism > 1 {
			sem := make(chan struct{}, cfg.Parallelism)
			var wg sync.WaitGroup
			for qi := 0; qi < cfg.QueriesPerPoint; qi++ {
				wg.Add(1)
				go func(qi int) {
					defer wg.Done()
					sem <- struct{}{}
					results[qi] = runOne(qi)
					<-sem
				}(qi)
			}
			wg.Wait()
		} else {
			for qi := 0; qi < cfg.QueriesPerPoint; qi++ {
				results[qi] = runOne(qi)
			}
		}
		planned := 0
		// Per-point latency histograms back the percentile columns; the
		// log-bucketed estimate keeps them cheap at any QueriesPerPoint.
		latency, planLatency := obs.NewHistogram(), obs.NewHistogram()
		for _, r := range results {
			if r.err != nil {
				return nil, r.err
			}
			if !r.ok {
				continue
			}
			pt.WithRewriting++
			pt.AvgMillis += r.ms
			latency.Observe(r.ns)
			if r.ms > pt.MaxMillis {
				pt.MaxMillis = r.ms
			}
			pt.AvgViewClasses += float64(r.viewClasses)
			pt.AvgRepTuples += float64(r.repTuples)
			pt.AvgGMRs += float64(r.gmrs)
			pt.AvgGMRSize += float64(r.gmrSize)
			pt.AvgAllTuples += float64(r.allTuples)
			pt.absorb(r.stats)
			if r.planned {
				planned++
				pt.AvgPlanMillis += r.planMs
				planLatency.Observe(r.planNs)
				if r.planMs > pt.MaxPlanMillis {
					pt.MaxPlanMillis = r.planMs
				}
				pt.AvgPlanCost += float64(r.planCost)
				pt.absorbPlan(r.planStats)
			}
		}
		if pt.WithRewriting > 0 {
			n := float64(pt.WithRewriting)
			pt.AvgMillis /= n
			pt.AvgViewClasses /= n
			pt.AvgRepTuples /= n
			pt.AvgAllTuples /= n
			pt.AvgGMRs /= n
			pt.AvgGMRSize /= n
			ls := latency.Snapshot()
			pt.P50Millis = float64(ls.P50) / 1e6
			pt.P90Millis = float64(ls.P90) / 1e6
			pt.P99Millis = float64(ls.P99) / 1e6
		}
		if planned > 0 {
			pt.AvgPlanMillis /= float64(planned)
			pt.AvgPlanCost /= float64(planned)
			ps := planLatency.Snapshot()
			pt.PlanP50Millis = float64(ps.P50) / 1e6
			pt.PlanP90Millis = float64(ps.P90) / 1e6
			pt.PlanP99Millis = float64(ps.P99) / 1e6
		}
		out = append(out, pt)
	}
	return out, nil
}

// planOne materializes the instance's views over synthetic base data and
// times the one-shot planner under the sweep's cost model. The data is
// seeded per query, so reruns are deterministic.
func planOne(cfg SweepConfig, inst *workload.Instance, qi int) (queryResult, error) {
	db := engine.NewDatabase()
	gen := engine.NewDataGen(cfg.Seed+int64(qi)+7919, cfg.DataDomain)
	gen.FillForQuery(db, inst.Query, cfg.DataRows)
	if err := db.MaterializeViews(inst.Views); err != nil {
		return queryResult{}, err
	}
	req := viewplan.PlanRequest{
		Model:         cfg.CostModel,
		MaxRewritings: cfg.Options.MaxRewritings,
		Parallelism:   cfg.Options.Parallelism,
		Registry:      cfg.Registry,
	}
	switch cfg.Execute {
	case "":
	case "materialized":
		req.Execute = true
	case "stream":
		req.StreamExec = true
	case "symmetric":
		req.StreamExec, req.SymmetricJoins = true, true
	default:
		return queryResult{}, fmt.Errorf("experiments: unknown Execute mode %q", cfg.Execute)
	}
	if cfg.Trace {
		req.Tracer = obs.New()
	}
	start := time.Now() //viewplan:nondet-ok wall time is reported to humans in the experiment tables and never feeds back into planning
	res, err := viewplan.PlanQuery(db, inst.Query, inst.Views, req)
	if err != nil {
		return queryResult{}, err
	}
	elapsed := time.Since(start) //viewplan:nondet-ok wall time is reported to humans in the experiment tables and never feeds back into planning
	if res == nil {
		return queryResult{}, nil
	}
	return queryResult{
		planned:   true,
		planMs:    float64(elapsed.Microseconds()) / 1000.0,
		planNs:    elapsed.Nanoseconds(),
		planCost:  res.Cost,
		planStats: res.Stats,
	}, nil
}

// absorb folds one query's observability snapshot into the point's
// counter and phase-time sums.
func (pt *Point) absorb(s *obs.Snapshot) {
	pt.Counters, pt.PhaseNanos, pt.PhaseSelfNanos =
		absorbInto(pt.Counters, pt.PhaseNanos, pt.PhaseSelfNanos, s)
}

// absorbPlan is absorb for the cost-planning snapshot.
func (pt *Point) absorbPlan(s *obs.Snapshot) {
	pt.PlanCounters, pt.PlanPhaseNanos, pt.PlanPhaseSelfNanos =
		absorbInto(pt.PlanCounters, pt.PlanPhaseNanos, pt.PlanPhaseSelfNanos, s)
}

func absorbInto(counters, phases, selfs map[string]int64, s *obs.Snapshot) (map[string]int64, map[string]int64, map[string]int64) {
	if s == nil {
		return counters, phases, selfs
	}
	if counters == nil {
		counters = make(map[string]int64)
		phases = make(map[string]int64)
		selfs = make(map[string]int64)
	}
	for name, v := range s.Counters {
		counters[name] += v
	}
	var walk func(ps []obs.PhaseStats)
	walk = func(ps []obs.PhaseStats) {
		for _, p := range ps {
			phases[p.Phase] += p.Nanos
			selfs[p.Phase] += p.SelfNanos
			walk(p.Children)
		}
	}
	walk(s.Phases)
	return counters, phases, selfs
}

func countNonEmptyClasses(res *corecover.Result) int {
	n := 0
	for _, c := range res.Classes {
		if !c.Core.IsEmpty() {
			n++
		}
	}
	return n
}

// Figure identifies one of the paper's experimental figures.
type Figure string

// The eight experimental figures of Section 7.
const (
	Fig6a Figure = "6a" // star, all distinguished: time for all GMRs
	Fig6b Figure = "6b" // star, 1 nondistinguished: time for all GMRs
	Fig7a Figure = "7a" // star: view equivalence classes
	Fig7b Figure = "7b" // star: view tuples vs representative view tuples
	Fig8a Figure = "8a" // chain, all distinguished: time for all GMRs
	Fig8b Figure = "8b" // chain, 1 nondistinguished: time for all GMRs
	Fig9a Figure = "9a" // chain: view equivalence classes
	Fig9b Figure = "9b" // chain: view tuples vs representative view tuples
)

// AllFigures lists the experimental figures in paper order.
func AllFigures() []Figure {
	return []Figure{Fig6a, Fig6b, Fig7a, Fig7b, Fig8a, Fig8b, Fig9a, Fig9b}
}

// ConfigFor returns the sweep configuration reproducing a figure. Several
// figures share a sweep (timing and class counts come from the same runs,
// as in the paper); the figure only selects which columns to print.
func ConfigFor(fig Figure) (SweepConfig, error) {
	base := SweepConfig{}.Normalize()
	switch fig {
	case Fig6a, Fig7a, Fig7b:
		base.Shape = workload.Star
	case Fig6b:
		base.Shape = workload.Star
		base.Nondistinguished = 1
	case Fig8a, Fig9a, Fig9b:
		base.Shape = workload.Chain
	case Fig8b:
		base.Shape = workload.Chain
		base.Nondistinguished = 1
	default:
		return SweepConfig{}, fmt.Errorf("experiments: unknown figure %q", fig)
	}
	return base, nil
}

// TraceRun plans one representative instance of the sweep with span
// capture on and writes the run as a Chrome trace-event file (load it
// at ui.perfetto.dev or chrome://tracing). The first seeded instance
// with a rewriting is used: its CoreCover run is always traced, and
// when cfg.CostModel is set the end-to-end PlanQuery over materialized
// synthetic views is traced as a second thread.
func TraceRun(cfg SweepConfig, w io.Writer) error {
	cfg = cfg.Normalize()
	nv := cfg.ViewCounts[0]
	for qi := 0; qi < cfg.QueriesPerPoint; qi++ {
		inst, err := workload.Generate(workload.Config{
			Shape:            cfg.Shape,
			QuerySubgoals:    cfg.QuerySubgoals,
			NumViews:         nv,
			Nondistinguished: cfg.Nondistinguished,
			Seed:             cfg.Seed + int64(qi),
		})
		if err != nil {
			return err
		}
		tr := obs.New()
		tr.CaptureEvents()
		opts := cfg.Options
		opts.Tracer = tr
		res, err := corecover.CoreCover(inst.Query, inst.Views, opts)
		if err != nil {
			return err
		}
		if len(res.Rewritings) == 0 {
			continue
		}
		if cfg.Registry != nil {
			cfg.Registry.Absorb(tr.Snapshot())
		}
		tracers := []*obs.Tracer{tr}
		if cfg.CostModel != 0 {
			db := engine.NewDatabase()
			gen := engine.NewDataGen(cfg.Seed+int64(qi)+7919, cfg.DataDomain)
			gen.FillForQuery(db, inst.Query, cfg.DataRows)
			if err := db.MaterializeViews(inst.Views); err != nil {
				return err
			}
			ptr := obs.New()
			ptr.CaptureEvents()
			req := viewplan.PlanRequest{
				Model:         cfg.CostModel,
				MaxRewritings: cfg.Options.MaxRewritings,
				Parallelism:   cfg.Options.Parallelism,
				Tracer:        ptr,
				Registry:      cfg.Registry,
			}
			if _, err := viewplan.PlanQuery(db, inst.Query, inst.Views, req); err != nil {
				return err
			}
			tracers = append(tracers, ptr)
		}
		return obs.WriteTraceEvents(w, tracers...)
	}
	return fmt.Errorf("experiments: no instance with a rewriting at %d views (shape %s)", nv, cfg.Shape)
}

// FigureMetrics is one figure's sweep in the machine-readable report
// written by `benchviews -metrics FILE` (the BENCH_*.json trajectory
// files): the sweep's identity plus every Point with its counter and
// phase-time aggregates.
type FigureMetrics struct {
	Figure           Figure  `json:"figure"`
	Shape            string  `json:"shape"`
	Nondistinguished int     `json:"nondistinguished"`
	QueriesPerPoint  int     `json:"queries_per_point"`
	Points           []Point `json:"points"`
}

// MetricsSchema is the version of the -metrics JSON layout. Schema 1
// was a bare []FigureMetrics array; schema 2 wraps it in an object with
// a version tag, adds latency percentiles and phase self-times to every
// Point, and can carry a registry snapshot of the whole run.
const MetricsSchema = 2

// MetricsReport is the top-level -metrics document (schema 2).
type MetricsReport struct {
	// Schema is MetricsSchema; consumers should reject versions they
	// don't know.
	Schema int `json:"schema"`
	// Figures holds one entry per figure swept, in run order.
	Figures []FigureMetrics `json:"figures"`
	// Registry is the process-lifetime telemetry snapshot of the run,
	// when a registry was attached (SweepConfig.Registry).
	Registry *obs.RegistrySnapshot `json:"registry,omitempty"`
}

// WriteMetrics renders the report as indented JSON (schema 2).
func WriteMetrics(w io.Writer, report []FigureMetrics) error {
	return WriteMetricsReport(w, &MetricsReport{Figures: report})
}

// WriteMetricsReport renders a full metrics document, stamping the
// schema version.
func WriteMetricsReport(w io.Writer, report *MetricsReport) error {
	report.Schema = MetricsSchema
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// RenderPlanning writes the cost-planning columns of a CostModel sweep as
// an aligned text table: per view count, the mean/max end-to-end planning
// time and the mean chosen-plan cost.
func RenderPlanning(w io.Writer, model cost.Model, points []Point) {
	fmt.Fprintf(w, "# %s planning over materialized views (ms)\n", model)
	fmt.Fprintf(w, "%-10s %-14s %-14s %-14s\n", "views", "avg_plan_ms", "max_plan_ms", "avg_plan_cost")
	for _, p := range points {
		fmt.Fprintf(w, "%-10d %-14.3f %-14.3f %-14.1f\n", p.NumViews, p.AvgPlanMillis, p.MaxPlanMillis, p.AvgPlanCost)
	}
}

// Render writes a figure's series as an aligned text table (and CSV-ready
// columns) to w.
func Render(w io.Writer, fig Figure, points []Point) {
	switch fig {
	case Fig6a, Fig6b, Fig8a, Fig8b:
		fmt.Fprintf(w, "# Figure %s: time of generating all GMRs (ms)\n", fig)
		fmt.Fprintf(w, "%-10s %-12s %-12s %-14s\n", "views", "avg_ms", "max_ms", "with_rewriting")
		for _, p := range points {
			fmt.Fprintf(w, "%-10d %-12.3f %-12.3f %d/%d\n", p.NumViews, p.AvgMillis, p.MaxMillis, p.WithRewriting, p.Queries)
		}
	case Fig7a, Fig9a:
		fmt.Fprintf(w, "# Figure %s: number of view equivalence classes\n", fig)
		fmt.Fprintf(w, "%-10s %-20s\n", "views", "representative_views")
		for _, p := range points {
			fmt.Fprintf(w, "%-10d %-20.1f\n", p.NumViews, p.AvgViewClasses)
		}
	case Fig7b, Fig9b:
		fmt.Fprintf(w, "# Figure %s: view tuples vs representative view tuples\n", fig)
		fmt.Fprintf(w, "%-10s %-16s %-24s\n", "views", "all_view_tuples", "representative_tuples")
		for _, p := range points {
			fmt.Fprintf(w, "%-10d %-16.1f %-24.1f\n", p.NumViews, p.AvgAllTuples, p.AvgRepTuples)
		}
	}
}
