package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"viewplan/internal/obs"
	"viewplan/internal/workload"
)

// smallSweep keeps test time reasonable while exercising the full path.
func smallSweep(shape workload.Shape, nondist int) SweepConfig {
	return SweepConfig{
		Shape:            shape,
		Nondistinguished: nondist,
		ViewCounts:       []int{40, 80},
		QueriesPerPoint:  4,
		QuerySubgoals:    6,
		Seed:             100,
	}
}

func TestRunStarSweep(t *testing.T) {
	pts, err := Run(smallSweep(workload.Star, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %v", pts)
	}
	for _, p := range pts {
		if p.WithRewriting == 0 {
			t.Errorf("no rewritings at %d views", p.NumViews)
			continue
		}
		if p.AvgViewClasses <= 0 || p.AvgViewClasses > float64(p.NumViews) {
			t.Errorf("view classes = %f at %d views", p.AvgViewClasses, p.NumViews)
		}
		if p.AvgRepTuples <= 0 {
			t.Errorf("rep tuples = %f", p.AvgRepTuples)
		}
		if p.AvgAllTuples < p.AvgRepTuples {
			t.Errorf("all tuples %f < representative tuples %f", p.AvgAllTuples, p.AvgRepTuples)
		}
		if p.AvgGMRSize <= 0 {
			t.Errorf("GMR size = %f", p.AvgGMRSize)
		}
	}
}

func TestRepresentativeTuplesNearConstant(t *testing.T) {
	// The Figure 7(b)/9(b) shape: representative view tuples stay bounded
	// by a function of the query, not of the number of views.
	pts, err := Run(SweepConfig{
		Shape:           workload.Chain,
		ViewCounts:      []int{50, 150},
		QueriesPerPoint: 4,
		QuerySubgoals:   6,
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].WithRewriting == 0 || pts[1].WithRewriting == 0 {
		t.Fatalf("points = %+v", pts)
	}
	// With 6 chain subgoals there are at most 6+5+4 = 15 distinct
	// contiguous fragments of length <= 3, so representative tuples must
	// stay <= 15 no matter how many views exist.
	for _, p := range pts {
		if p.AvgRepTuples > 15 {
			t.Errorf("representative tuples %f exceed the fragment bound", p.AvgRepTuples)
		}
	}
	// The all-tuples curve grows with views.
	if pts[1].AvgAllTuples <= pts[0].AvgAllTuples {
		t.Logf("all tuples did not grow (%f -> %f): acceptable for small sweeps",
			pts[0].AvgAllTuples, pts[1].AvgAllTuples)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	base := smallSweep(workload.Star, 0)
	seq, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Parallelism = 4
	got, err := Run(par)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(got) {
		t.Fatalf("point counts differ: %d vs %d", len(seq), len(got))
	}
	for i := range seq {
		// Timing fields vary; structural aggregates must be identical
		// because seeding is deterministic per query index.
		if seq[i].WithRewriting != got[i].WithRewriting ||
			seq[i].AvgViewClasses != got[i].AvgViewClasses ||
			seq[i].AvgRepTuples != got[i].AvgRepTuples ||
			seq[i].AvgGMRs != got[i].AvgGMRs ||
			seq[i].AvgGMRSize != got[i].AvgGMRSize ||
			seq[i].AvgAllTuples != got[i].AvgAllTuples {
			t.Errorf("point %d differs: seq %+v, par %+v", i, seq[i], got[i])
		}
	}
}

func TestConfigForAllFigures(t *testing.T) {
	for _, fig := range AllFigures() {
		cfg, err := ConfigFor(fig)
		if err != nil {
			t.Errorf("ConfigFor(%s): %v", fig, err)
			continue
		}
		switch fig {
		case Fig6a, Fig6b, Fig7a, Fig7b:
			if cfg.Shape != workload.Star {
				t.Errorf("%s shape = %v", fig, cfg.Shape)
			}
		default:
			if cfg.Shape != workload.Chain {
				t.Errorf("%s shape = %v", fig, cfg.Shape)
			}
		}
		if (fig == Fig6b || fig == Fig8b) != (cfg.Nondistinguished == 1) {
			t.Errorf("%s nondistinguished = %d", fig, cfg.Nondistinguished)
		}
	}
	if _, err := ConfigFor("nope"); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRender(t *testing.T) {
	pts := []Point{{NumViews: 100, AvgMillis: 1.5, MaxMillis: 3.0, AvgViewClasses: 42,
		AvgAllTuples: 20, AvgRepTuples: 5, WithRewriting: 39, Queries: 40}}
	for _, fig := range AllFigures() {
		var b bytes.Buffer
		Render(&b, fig, pts)
		out := b.String()
		if !strings.Contains(out, "Figure "+string(fig)) {
			t.Errorf("render %s missing header: %q", fig, out)
		}
		if !strings.Contains(out, "100") {
			t.Errorf("render %s missing data: %q", fig, out)
		}
	}
}

func TestDefaultViewCounts(t *testing.T) {
	vc := DefaultViewCounts()
	if len(vc) != 10 || vc[0] != 100 || vc[9] != 1000 {
		t.Errorf("view counts = %v", vc)
	}
}

func TestTraceAggregates(t *testing.T) {
	cfg := smallSweep(workload.Star, 0)
	cfg.Trace = true
	pts, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.WithRewriting == 0 {
			continue
		}
		if p.Counters == nil || p.PhaseNanos == nil {
			t.Fatalf("trace aggregates missing at %d views: %+v", p.NumViews, p)
		}
		for _, ctr := range []string{"view_tuples", "tuple_cores", "cover_nodes", "hom_searches", "rewritings"} {
			if p.Counters[ctr] <= 0 {
				t.Errorf("counter %s = %d at %d views", ctr, p.Counters[ctr], p.NumViews)
			}
		}
		total := p.PhaseNanos["corecover"]
		if total <= 0 {
			t.Fatalf("corecover phase time missing at %d views", p.NumViews)
		}
		// The sub-phases must account for (nearly) all of the run: their
		// sum lies within 10% of the root span's total.
		sum := int64(0)
		for name, ns := range p.PhaseNanos {
			switch name {
			case "minimize", "view-grouping", "view-tuples", "tuple-cores", "cover-search", "assemble":
				sum += ns
			}
		}
		if ratio := float64(sum) / float64(total); ratio < 0.9 || ratio > 1.1 {
			t.Errorf("sub-phase sum %.0fns is %.0f%% of total %.0fns at %d views",
				float64(sum), 100*ratio, float64(total), p.NumViews)
		}
	}
}

func TestWriteMetrics(t *testing.T) {
	var buf bytes.Buffer
	report := []FigureMetrics{{
		Figure: Fig6a, Shape: "star", QueriesPerPoint: 4,
		Points: []Point{{NumViews: 40, Counters: map[string]int64{"view_tuples": 7}}},
	}}
	if err := WriteMetrics(&buf, report); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"schema": 2`, `"figures"`, `"figure": "6a"`, `"num_views": 40`, `"view_tuples": 7`} {
		if !strings.Contains(s, want) {
			t.Errorf("metrics JSON missing %s:\n%s", want, s)
		}
	}
}

func TestSweepPercentilesSelfTimesAndRegistry(t *testing.T) {
	cfg := smallSweep(workload.Star, 0)
	cfg.Trace = true
	cfg.Registry = obs.NewRegistry()
	pts, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.WithRewriting == 0 {
			continue
		}
		if p.P50Millis <= 0 || p.P50Millis > p.P90Millis || p.P90Millis > p.P99Millis {
			t.Errorf("percentiles not ordered at %d views: p50=%f p90=%f p99=%f",
				p.NumViews, p.P50Millis, p.P90Millis, p.P99Millis)
		}
		// The p99 estimate can overshoot the true max by at most half a
		// bucket (6.25% relative).
		if p.P99Millis > p.MaxMillis*1.07 {
			t.Errorf("p99 %f far above max %f at %d views", p.P99Millis, p.MaxMillis, p.NumViews)
		}
		if len(p.PhaseSelfNanos) == 0 {
			t.Fatalf("phase self-times missing at %d views", p.NumViews)
		}
		// Self-times telescope: their sum equals the root phase totals.
		var selfSum int64
		for _, ns := range p.PhaseSelfNanos {
			selfSum += ns
		}
		if total := p.PhaseNanos["corecover"]; selfSum != total {
			t.Errorf("self-time sum %d != corecover total %d at %d views", selfSum, total, p.NumViews)
		}
	}
	// The registry saw every query attempted (rewriting or not): the
	// CoreCover latency histogram records one observation per query.
	snap := cfg.Registry.Snapshot()
	h, ok := snap.Histograms[obs.HistCoreCoverLatency]
	if !ok {
		t.Fatal("registry missing corecover latency histogram")
	}
	if want := int64(len(pts) * cfg.QueriesPerPoint); h.Count != want {
		t.Errorf("corecover latency count = %d, want %d", h.Count, want)
	}
	if snap.Counters["hom_searches"] <= 0 {
		t.Errorf("registry counters not absorbed: %v", snap.Counters)
	}
}

func TestTraceRunWritesTraceEvents(t *testing.T) {
	cfg := smallSweep(workload.Star, 0)
	var buf bytes.Buffer
	if err := TraceRun(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	var spans int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatalf("no complete spans in trace: %s", buf.String())
	}
	var sawCore bool
	for _, ev := range doc.TraceEvents {
		if ev.Name == "corecover" {
			sawCore = true
		}
	}
	if !sawCore {
		t.Error("trace has no corecover span")
	}
}
