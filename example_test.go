package viewplan_test

import (
	"fmt"

	"viewplan"
)

// The paper's running example: find the globally-minimal rewriting.
func ExampleFindGMRs() {
	q := viewplan.MustParseQuery(
		"q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)")
	vs, _ := viewplan.ParseViews(`
		v1(M, D, C) :- car(M, D), loc(D, C).
		v2(S, M, C) :- part(S, M, C).
		v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
	`)
	res, _ := viewplan.FindGMRs(q, vs)
	for _, p := range res.Rewritings {
		fmt.Println(p)
	}
	// Output:
	// q1(S, C) :- v4(M, a, C, S)
}

// CoreCover* finds every minimal rewriting using view tuples — the
// search space for size-based cost models.
func ExampleFindMinimalRewritings() {
	q := viewplan.MustParseQuery(
		"q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)")
	vs, _ := viewplan.ParseViews(`
		v1(M, D, C) :- car(M, D), loc(D, C).
		v2(S, M, C) :- part(S, M, C).
		v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
	`)
	res, _ := viewplan.FindMinimalRewritings(q, vs)
	for _, p := range res.Rewritings {
		fmt.Println(p)
	}
	// Output:
	// q1(S, C) :- v1(M, a, C), v2(S, M, C)
	// q1(S, C) :- v4(M, a, C, S)
}

// Chandra–Merlin containment of conjunctive queries.
func ExampleContains() {
	path2 := viewplan.MustParseQuery("q(X) :- e(X, Y), e(Y, Z)")
	path1 := viewplan.MustParseQuery("q(X) :- e(X, Y)")
	fmt.Println(viewplan.Contains(path2, path1))
	fmt.Println(viewplan.Contains(path1, path2))
	// Output:
	// true
	// false
}

// Minimization removes redundant subgoals (computes the core).
func ExampleMinimize() {
	q := viewplan.MustParseQuery("q(X) :- e(X, Y), e(X, Z)")
	fmt.Println(viewplan.Minimize(q))
	// Output:
	// q(X) :- e(X, Z)
}

// A rewriting's expansion replaces view literals by their definitions.
func ExampleExpand() {
	vs, _ := viewplan.ParseViews("v1(M, D, C) :- car(M, D), loc(D, C).")
	p := viewplan.MustParseQuery("q(M, C) :- v1(M, a, C)")
	exp, _ := viewplan.Expand(p, vs)
	fmt.Println(exp)
	// Output:
	// q(M, C) :- car(M, a), loc(a, C)
}

// View tuples are the building blocks of CoreCover's search space.
func ExampleViewTuples() {
	q := viewplan.MustParseQuery("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)")
	vs, _ := viewplan.ParseViews(`
		v1(A, B) :- a(A, B), a(B, B).
		v2(C, D) :- a(C, E), b(C, D).
	`)
	for _, t := range viewplan.ViewTuples(q, vs) {
		fmt.Println(t.Atom)
	}
	// Output:
	// v1(X, Z)
	// v1(Z, Z)
	// v2(Z, Y)
}

// Materialize views and execute a rewriting under the closed-world
// assumption.
func ExampleDatabase() {
	vs, _ := viewplan.ParseViews("v(M, C) :- car(M, D), loc(D, C).")
	db := viewplan.NewDatabase()
	_ = db.LoadFacts("car(honda, a). loc(a, sf).")
	_ = db.MaterializeViews(vs)
	rel, _ := db.Evaluate(viewplan.MustParseQuery("q(M, C) :- v(M, C)"))
	for _, row := range rel.SortedRows() {
		fmt.Println(row)
	}
	// Output:
	// [honda sf]
}

// Built-in comparison predicates filter query answers (Section 8).
func ExampleParseQuery_comparisons() {
	db := viewplan.NewDatabase()
	_ = db.LoadFacts("r(1, 2). r(2, 1). r(3, 3).")
	q := viewplan.MustParseQuery("s(X, Y) :- r(X, Y), X <= Y")
	rel, _ := db.Evaluate(q)
	for _, row := range rel.SortedRows() {
		fmt.Println(row)
	}
	// Output:
	// [1 2]
	// [3 3]
}

// Union rewritings compare by total cost, not disjunct count.
func ExampleParseUnion() {
	u, _ := viewplan.ParseUnion(`
		q(X) :- a(X).
		q(X) :- b(X).
	`)
	fmt.Println(u.Len(), "disjuncts,", u.SubgoalCount(), "subgoals")
	// Output:
	// 2 disjuncts, 2 subgoals
}
