package viewplan_test

import (
	"testing"

	"viewplan"
)

const paperViews = `
	v1(M, D, C) :- car(M, D), loc(D, C).
	v2(S, M, C) :- part(S, M, C).
	v3(S) :- car(M, a), loc(a, C), part(S, M, C).
	v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
	v5(M, D, C) :- car(M, D), loc(D, C).
`

const paperQuery = "q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)"

func TestPublicAPIEndToEnd(t *testing.T) {
	q := viewplan.MustParseQuery(paperQuery)
	vs, err := viewplan.ParseViews(paperViews)
	if err != nil {
		t.Fatal(err)
	}

	res, err := viewplan.FindGMRs(q, vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewritings) != 1 {
		t.Fatalf("GMRs = %v", res.Rewritings)
	}
	gmr := res.Rewritings[0]
	if viewplan.M1Cost(gmr) != 1 {
		t.Errorf("GMR cost = %d", viewplan.M1Cost(gmr))
	}
	if !viewplan.IsEquivalentRewriting(gmr, q, vs) {
		t.Error("GMR not equivalent")
	}

	star, err := viewplan.FindMinimalRewritings(q, vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(star.Rewritings) != 2 {
		t.Errorf("CoreCover* rewritings = %v", star.Rewritings)
	}
	if len(star.FilterClasses()) != 1 {
		t.Errorf("filters = %v", star.FilterClasses())
	}

	ok, err := viewplan.HasRewriting(q, vs)
	if err != nil || !ok {
		t.Errorf("HasRewriting = %v, %v", ok, err)
	}
}

func TestPublicAPIContainment(t *testing.T) {
	a := viewplan.MustParseQuery("q(X) :- e(X, Y), e(Y, Z)")
	b := viewplan.MustParseQuery("q(X) :- e(X, Y)")
	if !viewplan.Contains(a, b) || viewplan.Contains(b, a) {
		t.Error("containment wrong")
	}
	m := viewplan.Minimize(viewplan.MustParseQuery("q(X) :- e(X, Y), e(X, Z)"))
	if len(m.Body) != 1 {
		t.Errorf("minimize = %s", m)
	}
}

func TestPublicAPIExpand(t *testing.T) {
	vs, _ := viewplan.ParseViews(paperViews)
	p := viewplan.MustParseQuery("q1(S, C) :- v4(M, a, C, S)")
	exp, err := viewplan.Expand(p, vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Body) != 3 {
		t.Errorf("expansion = %s", exp)
	}
	if !viewplan.Equivalent(exp, viewplan.MustParseQuery(paperQuery)) {
		t.Errorf("expansion %s not equivalent to query", exp)
	}
}

func TestPublicAPIViewTuples(t *testing.T) {
	q := viewplan.MustParseQuery(paperQuery)
	vs, _ := viewplan.ParseViews(paperViews)
	tuples := viewplan.ViewTuples(q, vs)
	if len(tuples) != 5 {
		t.Errorf("tuples = %v", tuples)
	}
}

func TestPublicAPIEngineAndCosts(t *testing.T) {
	q := viewplan.MustParseQuery(paperQuery)
	vs, _ := viewplan.ParseViews(paperViews)
	db := viewplan.NewDatabase()
	err := db.LoadFacts(`
		car(honda, a). car(toyota, a).
		loc(a, sf). loc(a, la).
		part(s1, honda, sf). part(s2, toyota, la). part(s3, honda, la).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.MaterializeViews(vs); err != nil {
		t.Fatal(err)
	}

	res, err := viewplan.FindMinimalRewritings(q, vs)
	if err != nil {
		t.Fatal(err)
	}
	base, err := db.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Rewritings {
		got, err := db.Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Size() != base.Size() {
			t.Errorf("%s: %d rows, want %d", p, got.Size(), base.Size())
		}
		plan, err := viewplan.BestPlanM2(db, p)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Cost <= 0 {
			t.Errorf("plan cost = %d", plan.Cost)
		}
		m3, err := viewplan.BestPlanM3(db, p, viewplan.RenamingHeuristic, q, vs)
		if err != nil {
			t.Fatal(err)
		}
		if m3.Cost > plan.Cost {
			t.Errorf("M3 with drops (%d) should not cost more than M2 (%d)", m3.Cost, plan.Cost)
		}
	}
}

func TestPublicAPIImproveWithFilters(t *testing.T) {
	q := viewplan.MustParseQuery(paperQuery)
	vs, _ := viewplan.ParseViews(paperViews)
	db := viewplan.NewDatabase()
	if err := db.LoadFacts("car(honda, a). loc(a, sf). part(s1, honda, sf)."); err != nil {
		t.Fatal(err)
	}
	if err := db.MaterializeViews(vs); err != nil {
		t.Fatal(err)
	}
	res, err := viewplan.FindMinimalRewritings(q, vs)
	if err != nil {
		t.Fatal(err)
	}
	var candidates []viewplan.ViewTuple
	for _, fc := range res.FilterClasses() {
		candidates = append(candidates, fc.Members...)
	}
	p := viewplan.MustParseQuery("q1(S, C) :- v1(M, a, C), v2(S, M, C)")
	fr, err := viewplan.ImproveWithFilters(db, p, q, vs, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Plan == nil || fr.Rewriting == nil {
		t.Error("filter result incomplete")
	}
}
