# viewplan build targets. `make check` is the fast pre-commit gate
# (vet + viewplanlint + race-enabled obs/corecover tests); `make lint`
# runs just the repo's analyzer suite; `make test` is the full suite;
# `make bench` runs the engine allocation gate (Fig. 6a M2 planning,
# allocs/op diffed against scripts/bench_engine_baseline.txt, >10%
# regression fails); `make benchall` runs every benchmark.

GO ?= go

.PHONY: build test check lint bench benchall vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

check:
	./scripts/check.sh

lint:
	$(GO) build -o bin/viewplanlint ./cmd/viewplanlint
	./bin/viewplanlint ./...

vet:
	$(GO) vet ./...

bench:
	./scripts/bench_engine.sh

benchall:
	$(GO) test -bench=. -benchmem -run=^$$ .
