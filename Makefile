# viewplan build targets. `make check` is the fast pre-commit gate
# (vet + race-enabled obs/corecover tests); `make test` is the full
# suite; `make bench` runs the paper's table/figure benchmarks.

GO ?= go

.PHONY: build test check bench vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

check:
	./scripts/check.sh

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
