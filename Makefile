# viewplan build targets. `make check` is the fast pre-commit gate
# (vet + viewplanlint + race-enabled obs/corecover tests); `make lint`
# runs just the repo's analyzer suite; `make test` is the full suite;
# `make bench` runs the engine allocation gate (Fig. 6a M2 planning,
# allocs/op diffed against scripts/bench_engine_baseline.txt, >10%
# regression fails); `make benchall` runs every benchmark; `make
# serve-bench` gates the resident service: the warm-request allocation
# gate (scripts/bench_service.sh) plus the QPS harness, which writes
# BENCH_service.json and fails unless warm p50/p99 beat the cold p50 by
# 5x; `make scale-bench` gates the sharded scale pipeline: the
# 1000-view sharded allocation gate (scripts/bench_scale.sh against
# scripts/bench_scale_baseline.txt) plus the cmd/benchscale sweep,
# which writes BENCH_scale.json and fails unless the sharded planner
# beats the legacy one by 2x at 5k+ views; `make exec-bench` gates plan
# execution (scripts/bench_exec.sh): cmd/benchexec diffs wall/allocs/
# peak resident rows against the checked-in BENCH_exec.json and fails
# unless streaming keeps ≥5× fewer resident rows and the symmetric hash
# join allocates ≥2× less than the materialized replay; `make trace`
# exports a
# sample Perfetto trace of a Fig. 6a run and validates the trace-event
# JSON with tracecheck.

GO ?= go

# Every source file the lint binary is built from: editing an analyzer,
# the framework, or the driver invalidates bin/viewplanlint, so `make
# lint` never runs a stale binary against a new rule set.
LINT_SRC := $(shell find cmd/viewplanlint internal/lint -name '*.go' -not -path '*/testdata/*')

.PHONY: build test check lint bench benchall serve-bench scale-bench exec-bench vet trace

build:
	$(GO) build ./...

test:
	$(GO) test ./...

check:
	./scripts/check.sh

bin/viewplanlint: $(LINT_SRC)
	$(GO) build -o $@ ./cmd/viewplanlint

lint: bin/viewplanlint
	./bin/viewplanlint -baseline lint_baseline.json ./...

vet:
	$(GO) vet ./...

bench:
	./scripts/bench_engine.sh

benchall:
	$(GO) test -bench=. -benchmem -run=^$$ .

serve-bench:
	./scripts/bench_service.sh
	$(GO) run ./cmd/servebench

scale-bench:
	./scripts/bench_scale.sh
	$(GO) run ./cmd/benchscale

exec-bench:
	./scripts/bench_exec.sh

# A small Fig. 6a sweep with span capture on: writes bin/trace_fig6a.json
# and verifies it is well-formed trace-event JSON (then open the file at
# https://ui.perfetto.dev to inspect the run as a timeline).
trace:
	$(GO) build -o bin/benchviews ./cmd/benchviews
	$(GO) build -o bin/tracecheck ./cmd/tracecheck
	./bin/benchviews -fig 6a -queries 4 -views 100 -cost m2 -traceout bin/trace_fig6a.json >/dev/null
	./bin/tracecheck bin/trace_fig6a.json
