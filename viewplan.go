// Package viewplan generates efficient, equivalent rewritings of
// conjunctive queries using materialized views, under the closed-world
// assumption. It is a Go implementation of Afrati, Li & Ullman,
// "Generating Efficient Plans for Queries Using Views" (SIGMOD 2001):
// the CoreCover algorithm for globally-minimal rewritings (cost model
// M1), the CoreCover* search space for size-based costs (M2), and the
// attribute-dropping renaming heuristic (M3), together with an in-memory
// relational engine that materializes views and measures plan costs on
// real data.
//
// # Quick start
//
//	q := viewplan.MustParseQuery("q(S, C) :- car(M, a), loc(a, C), part(S, M, C)")
//	vs, _ := viewplan.ParseViews(`
//	    v1(M, D, C) :- car(M, D), loc(D, C).
//	    v2(S, M, C) :- part(S, M, C).
//	`)
//	res, _ := viewplan.FindGMRs(q, vs)
//	for _, p := range res.Rewritings {
//	    fmt.Println(p) // q(S, C) :- v1(M, a, C), v2(S, M, C)
//	}
//
// # Parallelism
//
// The rewriting generator fans its two hot phases — per-view tuple
// computation and per-cover verification — across a bounded worker pool.
// Options.Parallelism (and PlanRequest.Parallelism) set the bound: 0
// sizes the pool to GOMAXPROCS, 1 runs strictly sequentially with no
// goroutines. Every setting produces an identical Result — workers
// collect into index-addressed slots and the pipeline reassembles them
// deterministically — so parallelism is purely a latency knob. Repeated
// containment checks inside verification are memoized in a per-run,
// worker-shared cache; the hom_cache_hits / hom_cache_misses counters in
// PlanningStats report its effectiveness.
//
// # Observability
//
// The planner is instrumented end to end. Every Result returned by
// FindGMRs and FindMinimalRewritings carries a PlanningStats snapshot —
// hierarchical phase durations (minimize, view tuples, tuple cores,
// cover search, verification) plus work counters (view tuples
// generated, homomorphism searches, cover-search nodes, rewritings
// verified) — with no setup:
//
//	res, _ := viewplan.FindGMRs(q, vs)
//	fmt.Println(res.PlanningStats.Text())
//
// For finer control, wire a Tracer yourself: NewTracer (or
// NewTracerWithLog for structured slog trace events) into
// Options.Tracer, PlanRequest.Tracer, or Database.SetTracer (which
// also makes the M2/M3 optimizers and the join engine report). A nil
// tracer is a no-op: the ...With entry points with a zero Options
// value plan with zero instrumentation overhead.
//
// # Service
//
// For the resident deployment shape — one long-lived view world, many
// arriving queries — compile the views once into a ViewCatalog and
// attach it, with a PlanCache, to every request:
//
//	cat, _ := viewplan.CompileViews(vs, viewplan.Options{})
//	cache := viewplan.NewPlanCache(1024)
//	res, _ := viewplan.FindGMRsWith(q, nil, viewplan.Options{Catalog: cat, Cache: cache})
//
// The catalog is immutable and shared freely across goroutines;
// AddViews/RemoveView return copy-on-write successors under fresh
// generations, which the cache's keys embed, so view mutations
// invalidate without purging. Results served from the cache are
// byte-identical to cold runs (a guarantee the cache-differential
// tests pin across a corpus, at every parallelism, and across
// interleaved mutations). cmd/planserve serves this pair over
// HTTP/JSON with hit/miss/eviction counters in a Registry, and
// cmd/servebench measures it under sustained concurrent traffic.
//
// The packages under internal/ hold the implementation: cq (conjunctive
// queries), containment (Chandra–Merlin machinery), views (expansions and
// view tuples), corecover (the paper's core), engine (execution), cost
// (M1/M2/M3 optimizers), obs (tracing and metrics), minicon/bucket/naive
// (baselines), workload and experiments (the Section 7 evaluation).
package viewplan

import (
	"io"
	"log/slog"
	"net/http"

	"viewplan/internal/containment"
	"viewplan/internal/corecover"
	"viewplan/internal/cost"
	"viewplan/internal/cq"
	"viewplan/internal/engine"
	"viewplan/internal/obs"
	"viewplan/internal/stats"
	"viewplan/internal/ucq"
	"viewplan/internal/views"
)

// Core logical types, re-exported for API users.
type (
	// Query is a conjunctive query h(X̄) :- g1(X̄1), ..., gk(X̄k).
	Query = cq.Query
	// Atom is a predicate applied to terms.
	Atom = cq.Atom
	// Term is a variable or constant.
	Term = cq.Term
	// Var is a query variable (upper-case initial).
	Var = cq.Var
	// Const is a constant symbol (lower-case initial or quoted).
	Const = cq.Const
	// Subst is a mapping from variables to terms (also used for
	// containment-mapping witnesses).
	Subst = cq.Subst
	// View is a named materialized view definition.
	View = views.View
	// ViewSet is a collection of views with unique names.
	ViewSet = views.Set
	// ViewTuple is a view tuple of a query given views (Section 3.3).
	ViewTuple = views.Tuple
	// Result is the output of FindGMRs / FindMinimalRewritings.
	Result = corecover.Result
	// Options tunes the CoreCover algorithms.
	Options = corecover.Options
	// ViewCatalog is an immutable compilation of a view set, built once
	// by CompileViews and shared freely across goroutines: precompiled
	// view vocabulary, equivalence classes, and the representative
	// subset, with copy-on-write AddViews/RemoveView returning a new
	// catalog under a fresh generation. Attach via Options.Catalog or
	// PlanRequest.Catalog.
	ViewCatalog = corecover.Catalog
	// PlanCache is a size-bounded concurrent LRU memo of planning
	// Results keyed by the query's exact canonical key and the catalog
	// generation. Attach via Options.Cache or PlanRequest.Cache,
	// alongside a ViewCatalog.
	PlanCache = corecover.PlanCache
	// TupleCore is the set of query subgoals a view tuple covers.
	TupleCore = corecover.TupleCore
	// Database is the in-memory relational store.
	Database = engine.Database
	// Relation is a named relation with set semantics.
	Relation = engine.Relation
	// Tuple is one relation row.
	Tuple = engine.Tuple
	// Plan is a simulated physical plan with measured sizes and cost.
	Plan = cost.Plan
	// CostModel identifies M1, M2 or M3.
	CostModel = cost.Model
	// DropStrategy selects the M3 attribute-dropping rule.
	DropStrategy = cost.DropStrategy
	// FilterResult reports the Section 5.1 filter-selection outcome.
	FilterResult = cost.FilterResult
	// ExecOptions selects how ExecutePlan runs a plan: the default
	// materialized JoinStep replay, or the streaming iterator path
	// (StreamExec), optionally with a symmetric hash first join.
	ExecOptions = cost.ExecOptions
	// ExecStats reports one plan execution's row counts and peak
	// resident rows.
	ExecStats = cost.ExecStats
	// Tracer records hierarchical phase spans and atomic work counters
	// for one planning run; nil is the no-op default.
	Tracer = obs.Tracer
	// IRCache memoizes intermediate join relations across the cost
	// optimizers' candidate rewritings (Database.SetIRCache). PlanQuery
	// attaches a fresh one per call when none is set.
	IRCache = engine.IRCache
	// PlanningStats is a snapshot of a run's phase durations and
	// counters (Result.PlanningStats); renders as text or JSON.
	PlanningStats = obs.Snapshot
	// PhaseStats is one node of a PlanningStats phase tree.
	PhaseStats = obs.PhaseStats
	// Registry accumulates process-lifetime telemetry — request counts,
	// counters, flattened phase times, and latency/cardinality
	// histograms — across many planning runs (PlanRequest.Registry).
	// Safe for concurrent use; nil is the no-op default.
	Registry = obs.Registry
	// RegistrySnapshot is a point-in-time copy of a Registry, with
	// Delta for interval reporting and JSON rendering.
	RegistrySnapshot = obs.RegistrySnapshot
	// Histogram is a lock-free log-bucketed latency/cardinality
	// histogram (Registry.Histogram).
	Histogram = obs.Histogram
	// HistogramSnapshot is a Histogram copy with p50/p90/p99 estimates.
	HistogramSnapshot = obs.HistogramSnapshot
)

// Cost models and drop strategies.
const (
	M1 = cost.M1
	M2 = cost.M2
	M3 = cost.M3
	// SupplementaryRelations is the classical drop rule.
	SupplementaryRelations = cost.SupplementaryRelations
	// RenamingHeuristic is the paper's Section 6.2 drop rule.
	RenamingHeuristic = cost.RenamingHeuristic
)

// ParseQuery parses one conjunctive query in Datalog syntax, e.g.
// "q(X, Y) :- a(X, Z), b(Z, Y).".
func ParseQuery(src string) (*Query, error) { return cq.ParseQuery(src) }

// MustParseQuery is ParseQuery, panicking on error.
func MustParseQuery(src string) *Query { return cq.MustParseQuery(src) }

// ParseViews parses a program of view definitions (one rule per view).
func ParseViews(src string) (*ViewSet, error) { return views.ParseSet(src) }

// NewViews builds a view set from parsed definitions.
func NewViews(defs ...*Query) (*ViewSet, error) { return views.NewSet(defs...) }

// NewTracer returns an empty planner tracer to pass via Options.Tracer,
// PlanRequest.Tracer, or Database.SetTracer.
func NewTracer() *Tracer { return obs.New() }

// NewIRCache returns an empty intermediate-relation cache. Attach it
// with Database.SetIRCache to share materialized join results across
// several planning runs over an unchanged database; without one,
// PlanQuery memoizes within each call only.
func NewIRCache() *IRCache { return engine.NewIRCache() }

// NewTracerWithLog returns a tracer that additionally emits structured
// slog trace events (debug level): one per completed phase span and one
// per engine join step.
func NewTracerWithLog(l *slog.Logger) *Tracer { return obs.NewWithSink(l) }

// NewRegistry returns an empty telemetry registry. Share one across
// PlanQuery calls (PlanRequest.Registry) to aggregate counters, phase
// times, and latency histograms over the process lifetime; read it with
// Registry.Snapshot or serve it over HTTP with MetricsHandler.
func NewRegistry() *Registry { return obs.NewRegistry() }

// ProcessRegistry returns the package-global registry that the deepest
// layers (the containment kernel's per-search backtrack histogram, the
// join engine's per-step cardinality histogram) always feed, alongside
// anything recorded into it explicitly.
func ProcessRegistry() *Registry { return obs.Process }

// MetricsHandler serves a JSON snapshot of the registry (expvar-style)
// for mounting on a debug mux; nil serves the process registry.
func MetricsHandler(r *Registry) http.Handler { return obs.Handler(r) }

// WriteTrace writes the captured phase spans of one or more tracers as
// a Chrome trace-event JSON file, loadable at ui.perfetto.dev or
// chrome://tracing. Call Tracer.CaptureEvents before planning so the
// tracer retains its spans; each tracer becomes one named thread.
func WriteTrace(w io.Writer, tracers ...*Tracer) error { return obs.WriteTraceEvents(w, tracers...) }

// FindGMRs runs CoreCover (Section 4): it returns all globally-minimal
// rewritings of q using the views — the optimal rewritings under cost
// model M1. Result.Rewritings is empty when q has no equivalent
// rewriting. The Result's PlanningStats reports where planning time
// went; use FindGMRsWith to supply your own tracer (or, with a zero
// Options value, to plan with zero instrumentation overhead).
func FindGMRs(q *Query, vs *ViewSet) (*Result, error) {
	return corecover.CoreCover(q, vs, Options{Tracer: obs.New()})
}

// FindGMRsWith is FindGMRs with explicit options (grouping ablations,
// caps, tracing). Result.PlanningStats is populated only when
// opts.Tracer is set.
func FindGMRsWith(q *Query, vs *ViewSet, opts Options) (*Result, error) {
	return corecover.CoreCover(q, vs, opts)
}

// FindMinimalRewritings runs CoreCover* (Section 5): all minimal
// rewritings of q that use view tuples — the search space guaranteed to
// contain an optimal rewriting under cost model M2. Empty-core view
// tuples usable as filters are in Result.FilterClasses(). The Result's
// PlanningStats reports where planning time went.
func FindMinimalRewritings(q *Query, vs *ViewSet) (*Result, error) {
	return corecover.CoreCoverStar(q, vs, Options{Tracer: obs.New()})
}

// FindMinimalRewritingsWith is FindMinimalRewritings with options.
// Result.PlanningStats is populated only when opts.Tracer is set.
func FindMinimalRewritingsWith(q *Query, vs *ViewSet, opts Options) (*Result, error) {
	return corecover.CoreCoverStar(q, vs, opts)
}

// HasRewriting reports whether q has any equivalent rewriting over vs.
func HasRewriting(q *Query, vs *ViewSet) (bool, error) {
	return corecover.HasRewriting(q, vs)
}

// Expand computes the expansion P^exp of a rewriting (Definition 2.2).
func Expand(p *Query, vs *ViewSet) (*Query, error) { return vs.Expand(p) }

// IsEquivalentRewriting reports whether p is an equivalent rewriting of q
// using vs (Definition 2.3).
func IsEquivalentRewriting(p, q *Query, vs *ViewSet) bool {
	return vs.IsEquivalentRewriting(p, q)
}

// Contains reports q1 ⊑ q2 (Chandra–Merlin containment).
func Contains(q1, q2 *Query) bool { return containment.Contains(q1, q2) }

// Equivalent reports q1 ≡ q2.
func Equivalent(q1, q2 *Query) bool { return containment.Equivalent(q1, q2) }

// Minimize returns the minimal equivalent (core) of q.
func Minimize(q *Query) *Query { return containment.Minimize(q) }

// ViewTuples computes T(Q, V), the view tuples of q given the views
// (Section 3.3).
func ViewTuples(q *Query, vs *ViewSet) []ViewTuple {
	return views.ComputeTuples(containment.Minimize(q), vs)
}

// NewDatabase creates an empty in-memory database. Load base facts with
// Database.LoadFacts and materialize views with Database.MaterializeViews.
func NewDatabase() *Database { return engine.NewDatabase() }

// M1Cost is the cost of a rewriting under model M1 (number of subgoals).
func M1Cost(p *Query) int { return cost.M1Cost(p) }

// BestPlanM2 finds a minimum-cost M2 physical plan for rewriting p over
// db (views must be materialized). See cost model M2, Section 5.
func BestPlanM2(db *Database, p *Query) (*Plan, error) { return cost.BestPlanM2(db, p) }

// BestPlanM3 finds a minimum-cost M3 physical plan under the given drop
// strategy. For the RenamingHeuristic, q and vs supply the original query
// and views for the Section 6.2 equivalence tests.
func BestPlanM3(db *Database, p *Query, strategy DropStrategy, q *Query, vs *ViewSet) (*Plan, error) {
	return cost.BestPlanM3(db, p, strategy, q, vs)
}

// ExecutePlan runs an optimizer-chosen plan over db and returns the
// answer relation. All strategies — materialized replay, streaming
// iterators, symmetric hash joins — produce the byte-identical
// relation; StreamExec trades the materialized path's intermediate
// relations for constant per-operator state (see ExecOptions).
func ExecutePlan(db *Database, p *Plan, opts ExecOptions) (*Relation, ExecStats, error) {
	return cost.ExecutePlan(db, p, opts)
}

// ImproveWithFilters greedily adds filtering view literals to a rewriting
// when they lower its best M2 cost (Section 5.1).
func ImproveWithFilters(db *Database, p, q *Query, vs *ViewSet, candidates []ViewTuple) (*FilterResult, error) {
	return cost.ImproveWithFilters(db, p, q, vs, candidates)
}

// Union is a union of conjunctive queries — the rewriting form needed for
// built-in predicates and maximally-contained rewritings (Section 8).
type Union = ucq.Union

// ParseUnion parses a Datalog program whose rules share one head
// predicate into a union of conjunctive queries.
func ParseUnion(src string) (*Union, error) { return ucq.Parse(src) }

// UnionContains reports u1 ⊑ u2 with the disjunct-wise Sagiv–Yannakakis
// test (exact for pure conjunctive disjuncts, sound with comparisons).
func UnionContains(u1, u2 *Union) bool { return ucq.Contains(u1, u2) }

// UnionEquivalent reports containment both ways.
func UnionEquivalent(u1, u2 *Union) bool { return ucq.Equivalent(u1, u2) }

// MinimizeUnion removes redundant disjuncts and minimizes each survivor.
func MinimizeUnion(u *Union) *Union { return ucq.Minimize(u) }

// EvaluateUnion computes the union's answer over the database.
func EvaluateUnion(db *Database, u *Union) (*Relation, error) { return ucq.Evaluate(db, u) }

// UnionCostM2 sums the best M2 plan cost over the union's disjuncts.
func UnionCostM2(db *Database, u *Union) (int, []*Plan, error) { return ucq.CostM2(db, u) }

// MaximallyContained builds a maximally-contained union rewriting of q
// over the views (Section 8; via MiniCon's contained combinations). It
// returns nil when no contained rewriting exists.
func MaximallyContained(q *Query, vs *ViewSet, maxDisjuncts int) (*Union, error) {
	return ucq.MaximallyContained(q, vs, maxDisjuncts)
}

// StatsCatalog holds System-R style statistics (row counts, per-column
// distinct counts) for estimating plan costs without execution.
type StatsCatalog = stats.Catalog

// Catalog is the former name of StatsCatalog.
//
// Deprecated: use StatsCatalog. "Catalog" now refers to the resident
// view world (ViewCatalog); this alias remains so existing callers of
// CollectStats keep compiling.
type Catalog = stats.Catalog

// CollectStats scans the database's relations into a StatsCatalog.
func CollectStats(db *Database) StatsCatalog { return stats.Collect(db) }

// EstimateBestOrderM2 returns the join order with the lowest estimated
// M2 cost for the rewriting, plus the estimate, from statistics alone.
func EstimateBestOrderM2(cat StatsCatalog, p *Query) ([]int, float64, error) {
	return stats.BestOrderM2(cat, p)
}

// CompileViews compiles a view set into a resident ViewCatalog: view
// validation, the per-view definition keys, the Section 5.2 equivalence
// classes, and the representative subset computed once and reused by
// every request that attaches the catalog. opts contributes Parallelism
// (key computation fans out) and Tracer; planning-time fields are
// ignored.
func CompileViews(vs *ViewSet, opts Options) (*ViewCatalog, error) {
	return corecover.CompileViews(vs, opts)
}

// NewPlanCache returns a concurrent plan cache bounded to capacity
// entries (LRU eviction; capacity <= 0 stores nothing). Share one cache
// across all requests planning against the same ViewCatalog lineage —
// keys embed the catalog generation, so entries from before an
// AddViews/RemoveView can never serve afterwards.
func NewPlanCache(capacity int) *PlanCache { return corecover.NewPlanCache(capacity) }
