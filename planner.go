package viewplan

import (
	"fmt"

	"viewplan/internal/corecover"
	"viewplan/internal/cost"
	"viewplan/internal/engine"
	"viewplan/internal/obs"
)

// PlanRequest configures the one-shot planner: which cost model to
// optimize for and how much of the search space to explore. The zero
// value plans under M2 with filter selection enabled.
type PlanRequest struct {
	// Model selects M1, M2 or M3 (default M2).
	Model CostModel
	// Strategy selects the M3 drop rule (default RenamingHeuristic).
	Strategy DropStrategy
	// DisableFilters skips the Section 5.1 filter-augmentation pass
	// under M2.
	DisableFilters bool
	// MaxRewritings caps the rewritings considered (0 = all minimal
	// rewritings from CoreCover*).
	MaxRewritings int
	// Parallelism bounds the rewriting generator's worker pool (0 =
	// GOMAXPROCS, 1 = strictly sequential). The chosen plan is identical
	// for every setting; see Options.Parallelism.
	Parallelism int
	// Tracer, when non-nil, observes the whole pipeline — rewriting
	// generation, join-order optimization, and filter selection — and
	// PlanResult.Stats carries its snapshot. The tracer is attached to
	// db for the duration of the call (and restored afterwards), so
	// concurrent PlanQuery calls on one db should share a tracer or
	// leave it nil.
	Tracer *Tracer
	// Registry, when non-nil, accumulates this call into
	// process-lifetime telemetry: the request count, the run's counters
	// and phase times, the end-to-end latency histogram
	// (plan_latency_ns), and the candidate-rewriting cardinality
	// histogram. One Registry is safe to share across concurrent
	// PlanQuery calls and goroutines. When no Tracer is supplied, the
	// call gets a private one so the registry still sees the run (and
	// PlanResult.Stats carries its snapshot).
	Registry *Registry
	// Catalog, when non-nil, plans against the resident compiled view
	// world instead of the vs argument (which is then ignored): view
	// validation, equivalence grouping, and the representative subset
	// come precompiled from CompileViews. See Options.Catalog.
	Catalog *ViewCatalog
	// Cache, when non-nil alongside Catalog, memoizes the rewriting
	// generator's Results across requests under the query's exact
	// canonical key and the catalog generation. See Options.Cache.
	Cache *PlanCache
	// Execute also runs the chosen plan (M2/M3 only) and fills
	// PlanResult.Answer and PlanResult.ExecStats, by default through the
	// materialized JoinStep replay the cost simulation measured.
	Execute bool
	// StreamExec executes the chosen plan through the streaming iterator
	// path instead (implies Execute): lazy scan/join/project operators
	// drained at the plan root, byte-identical to the materialized
	// replay but without materializing intermediate relations.
	StreamExec bool
	// SymmetricJoins makes a streaming execution run its first join as a
	// symmetric hash join. Only meaningful with StreamExec.
	SymmetricJoins bool
}

// PlanResult is the planner's answer: the chosen rewriting with its
// physical plan, and what was explored along the way.
type PlanResult struct {
	// Rewriting is the chosen logical plan (possibly extended with
	// filtering view literals under M2).
	Rewriting *Query
	// Plan is its physical plan with measured sizes; nil under M1, where
	// the cost is purely the subgoal count.
	Plan *Plan
	// Cost is the plan cost (the subgoal count under M1).
	Cost int
	// Considered counts the candidate rewritings examined.
	Considered int
	// FiltersAdded lists filter literals appended under M2.
	FiltersAdded []Atom
	// Stats is the observability snapshot of the run when
	// PlanRequest.Tracer was set; nil otherwise.
	Stats *PlanningStats
	// Answer is the executed plan's result relation when
	// PlanRequest.Execute or StreamExec was set (nil under M1, which has
	// no physical plan to run).
	Answer *Relation
	// ExecStats reports the execution's row counts and peak resident
	// rows when the plan was executed.
	ExecStats *ExecStats
}

// PlanQuery runs the paper's full two-step architecture in one call:
// the rewriting generator (CoreCover for M1, CoreCover* for M2/M3)
// produces the cost model's guaranteed search space, and the optimizer
// picks the cheapest physical plan across it — join order via the
// subset-lattice search, filter views under M2, attribute-drop
// annotations under M3. Views must already be materialized in db for
// M2/M3 (M1 needs no data). It returns nil when q has no equivalent
// rewriting over vs.
func PlanQuery(db *Database, q *Query, vs *ViewSet, req PlanRequest) (*PlanResult, error) {
	if req.Model == 0 {
		req.Model = M2
	}
	if req.Registry != nil && req.Tracer == nil {
		req.Tracer = obs.New()
	}
	opts := corecover.Options{
		MaxRewritings: req.MaxRewritings,
		Parallelism:   req.Parallelism,
		Tracer:        req.Tracer,
		Catalog:       req.Catalog,
		Cache:         req.Cache,
	}
	if req.Tracer != nil && db != nil {
		prev := db.Tracer()
		db.SetTracer(req.Tracer)
		defer db.SetTracer(prev)
	}
	snapshot := func() *PlanningStats {
		if req.Tracer == nil {
			return nil
		}
		return req.Tracer.Snapshot()
	}
	// record folds the finished request into the registry (latency,
	// counters, phase times, rewritings considered); requests without a
	// rewriting still count.
	record := func(stats *PlanningStats, considered int) {
		req.Registry.RecordPlan(stats, int64(considered))
	}

	if req.Model == M1 {
		res, err := corecover.CoreCover(q, vs, opts)
		if err != nil {
			return nil, err
		}
		if len(res.Rewritings) == 0 {
			record(snapshot(), 0)
			return nil, nil
		}
		p := res.Rewritings[0]
		stats := snapshot()
		record(stats, len(res.Rewritings))
		return &PlanResult{
			Rewriting:  p,
			Cost:       cost.M1Cost(p),
			Considered: len(res.Rewritings),
			Stats:      stats,
		}, nil
	}

	if db == nil {
		return nil, fmt.Errorf("viewplan: cost model %s needs a database with materialized views", req.Model)
	}
	// Candidate rewritings share view tuples, so their cost simulations
	// keep joining the same subgoal sets; a per-call IR cache lets the
	// optimizers reuse those intermediate relations across candidates
	// (and across the repeated searches of filter selection). A caller
	// who attached a longer-lived cache keeps it.
	if db.IRCache() == nil {
		db.SetIRCache(engine.NewIRCache())
		defer db.SetIRCache(nil)
	}
	res, err := corecover.CoreCoverStar(q, vs, opts)
	if err != nil {
		return nil, err
	}
	if len(res.Rewritings) == 0 {
		record(snapshot(), 0)
		return nil, nil
	}

	var best *PlanResult
	for _, p := range res.Rewritings {
		var plan *cost.Plan
		switch req.Model {
		case M2:
			plan, err = cost.BestPlanM2(db, p)
		case M3:
			strategy := req.Strategy
			if strategy != SupplementaryRelations {
				strategy = RenamingHeuristic
			}
			plan, err = cost.BestPlanM3(db, p, strategy, q, vs)
		default:
			return nil, fmt.Errorf("viewplan: unknown cost model %v", req.Model)
		}
		if err != nil {
			return nil, err
		}
		if best == nil || plan.Cost < best.Cost {
			best = &PlanResult{Rewriting: p.Clone(), Plan: plan, Cost: plan.Cost}
		}
	}
	best.Considered = len(res.Rewritings)

	// Filter augmentation (Section 5.1) applies under M2 only.
	if req.Model == M2 && !req.DisableFilters {
		var candidates []ViewTuple
		for _, fc := range res.FilterClasses() {
			candidates = append(candidates, fc.Members...)
		}
		if len(candidates) > 0 {
			fr, err := cost.ImproveWithFilters(db, best.Rewriting, q, vs, candidates)
			if err != nil {
				return nil, err
			}
			if fr.Plan.Cost < best.Cost {
				best.Rewriting = fr.Rewriting
				best.Plan = fr.Plan
				best.Cost = fr.Plan.Cost
				best.FiltersAdded = fr.Added
			}
		}
	}
	// Execution rides inside the tracer/registry window so its counters
	// and histograms land in the same snapshot as the planning run.
	if req.Execute || req.StreamExec {
		answer, stats, err := cost.ExecutePlan(db, best.Plan, cost.ExecOptions{
			StreamExec:     req.StreamExec,
			SymmetricJoins: req.SymmetricJoins,
		})
		if err != nil {
			return nil, err
		}
		best.Answer = answer
		best.ExecStats = &stats
	}

	best.Stats = snapshot()
	record(best.Stats, best.Considered)
	return best, nil
}
