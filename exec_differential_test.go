package viewplan

import (
	"testing"

	"viewplan/internal/corecover"
	"viewplan/internal/cost"
	"viewplan/internal/engine"
	"viewplan/internal/workload"
)

// execCorpus is the 200-instance seeded chain/star corpus the planner
// differential harnesses run on (corecover/differential_test.go uses
// the same recipe), here with data materialized so plans can execute.
func execCorpus(t *testing.T) []*workload.Instance {
	t.Helper()
	var out []*workload.Instance
	for _, shape := range []workload.Shape{workload.Star, workload.Chain} {
		for i := 0; i < 100; i++ {
			inst, err := workload.Generate(workload.Config{
				Shape:            shape,
				QuerySubgoals:    4 + i%3,
				NumViews:         6 + i%7,
				Nondistinguished: i % 2,
				Seed:             int64(1000*int(shape) + i),
			})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, inst)
		}
	}
	return out
}

func tuplesIdentical(t *testing.T, label string, a, b *Relation) {
	t.Helper()
	if a.Name != b.Name || a.Arity != b.Arity || a.Size() != b.Size() {
		t.Fatalf("%s: relation shape differs: %s/%d/%d vs %s/%d/%d",
			label, a.Name, a.Arity, a.Size(), b.Name, b.Arity, b.Size())
	}
	ar, br := a.Rows(), b.Rows()
	for i := range ar {
		for j := range ar[i] {
			if ar[i][j] != br[i][j] {
				t.Fatalf("%s: row %d differs: %v vs %v", label, i, ar[i], br[i])
			}
		}
	}
}

// TestDifferentialStreamingExecution is the full-corpus gate of DESIGN
// §16: for every instance in the 200-instance corpus, under every
// planning configuration (sequential and parallel rewriting generation,
// unsharded and sharded cover search), the streaming and symmetric
// executions of the chosen M2 and M3 plans are byte-identical — same
// insertion order, not just the same set — to the materialized replay.
func TestDifferentialStreamingExecution(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus differential harness")
	}
	corpus := execCorpus(t)
	executed := 0
	for ci, inst := range corpus {
		var db *Database
		var plans []*Plan
		for _, par := range []int{1, 8} {
			for _, shards := range []int{0, 4} {
				res, err := corecover.CoreCoverStar(inst.Query, inst.Views, corecover.Options{
					MaxRewritings: 3,
					Parallelism:   par,
					CoverShards:   shards,
				})
				if err != nil {
					t.Fatalf("instance %d: %v", ci, err)
				}
				if len(res.Rewritings) == 0 {
					continue
				}
				if db == nil {
					db = NewDatabase()
					gen := engine.NewDataGen(int64(1000+ci), 6)
					gen.FillForQuery(db, inst.Query, 12)
					if err := db.MaterializeViews(inst.Views); err != nil {
						t.Fatalf("instance %d: %v", ci, err)
					}
					for _, p := range res.Rewritings {
						if len(p.Body) > 4 {
							continue
						}
						m2, err := cost.BestPlanM2(db, p)
						if err != nil {
							t.Fatalf("instance %d: BestPlanM2: %v", ci, err)
						}
						m3, err := cost.BestPlanM3(db, p, RenamingHeuristic, inst.Query, inst.Views)
						if err != nil {
							t.Fatalf("instance %d: BestPlanM3: %v", ci, err)
						}
						plans = append(plans, m2, m3)
					}
				}
				// The planner configuration must not leak into execution:
				// the same plans execute identically regardless of how the
				// rewriting search was parallelized or sharded.
				for pi, plan := range plans {
					want, _, err := ExecutePlan(db, plan, ExecOptions{})
					if err != nil {
						t.Fatalf("instance %d plan %d: materialized: %v", ci, pi, err)
					}
					for _, opts := range []ExecOptions{
						{StreamExec: true},
						{StreamExec: true, SymmetricJoins: true},
					} {
						got, _, err := ExecutePlan(db, plan, opts)
						if err != nil {
							t.Fatalf("instance %d plan %d %+v: %v", ci, pi, opts, err)
						}
						tuplesIdentical(t, inst.Query.String(), want, got)
						executed++
					}
				}
			}
		}
	}
	if executed == 0 {
		t.Fatal("differential corpus executed no plans")
	}
	t.Logf("differential harness: %d streaming executions byte-identical", executed)
}
