package viewplan_test

import (
	"strconv"
	"strings"
	"testing"

	"viewplan"
)

func plannerFixture(t *testing.T) (*viewplan.Database, *viewplan.Query, *viewplan.ViewSet) {
	t.Helper()
	vs, err := viewplan.ParseViews(`
		v1(M, D, C) :- car(M, D), loc(D, C).
		v2(S, M, C) :- part(S, M, C).
		v3(S) :- car(M, a), loc(a, C), part(S, M, C).
		v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
	`)
	if err != nil {
		t.Fatal(err)
	}
	q := viewplan.MustParseQuery("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)")
	db := viewplan.NewDatabase()
	var facts strings.Builder
	for i := 0; i < 10; i++ {
		facts.WriteString("car(m" + strconv.Itoa(i) + ", a). loc(a, c" + strconv.Itoa(i) + "). ")
	}
	facts.WriteString("part(s0, m0, c0). ")
	for i := 1; i < 60; i++ {
		facts.WriteString("part(sx" + strconv.Itoa(i) + ", zz, yy). ")
	}
	if err := db.LoadFacts(facts.String()); err != nil {
		t.Fatal(err)
	}
	if err := db.MaterializeViews(vs); err != nil {
		t.Fatal(err)
	}
	return db, q, vs
}

func TestPlanQueryM1(t *testing.T) {
	_, q, vs := plannerFixture(t)
	res, err := viewplan.PlanQuery(nil, q, vs, viewplan.PlanRequest{Model: viewplan.M1})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Cost != 1 || res.Rewriting.Body[0].Pred != "v4" {
		t.Errorf("M1 result = %+v", res)
	}
	if res.Plan != nil {
		t.Error("M1 should not build a physical plan")
	}
}

func TestPlanQueryM2PicksCheapest(t *testing.T) {
	db, q, vs := plannerFixture(t)
	res, err := viewplan.PlanQuery(db, q, vs, viewplan.PlanRequest{Model: viewplan.M2})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Plan == nil {
		t.Fatal("no plan")
	}
	// v4 holds exactly the answer (1 row), so the v4 rewriting wins.
	if res.Rewriting.Body[0].Pred != "v4" {
		t.Errorf("chosen = %s (cost %d)", res.Rewriting, res.Cost)
	}
	if res.Considered != 2 {
		t.Errorf("considered = %d, want 2 (CoreCover* rewritings)", res.Considered)
	}
}

func TestPlanQueryM2FiltersApply(t *testing.T) {
	db, q, vs := plannerFixture(t)
	// Remove v4 so the v1⋈v2 rewriting must win, and the selective v3
	// filter should be added.
	vs2, err := vs.Subset([]string{"v1", "v2", "v3"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := viewplan.PlanQuery(db, q, vs2, viewplan.PlanRequest{Model: viewplan.M2})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no plan")
	}
	if len(res.FiltersAdded) != 1 || res.FiltersAdded[0].Pred != "v3" {
		t.Errorf("filters = %v (cost %d)", res.FiltersAdded, res.Cost)
	}
	noFilters, err := viewplan.PlanQuery(db, q, vs2, viewplan.PlanRequest{Model: viewplan.M2, DisableFilters: true})
	if err != nil {
		t.Fatal(err)
	}
	if noFilters.Cost <= res.Cost {
		t.Errorf("filters did not help: %d vs %d", res.Cost, noFilters.Cost)
	}
}

func TestPlanQueryM3(t *testing.T) {
	db, q, vs := plannerFixture(t)
	res, err := viewplan.PlanQuery(db, q, vs, viewplan.PlanRequest{Model: viewplan.M3})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Plan == nil || res.Plan.Model != viewplan.M3 {
		t.Fatalf("M3 result = %+v", res)
	}
	// M3 plans never cost more than the M2 plan of the same rewriting.
	m2, err := viewplan.PlanQuery(db, q, vs, viewplan.PlanRequest{Model: viewplan.M2, DisableFilters: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > m2.Cost {
		t.Errorf("M3 cost %d exceeds M2 cost %d", res.Cost, m2.Cost)
	}
}

func TestPlanQueryNoRewriting(t *testing.T) {
	vs, err := viewplan.ParseViews("v1(M, D, C) :- car(M, D), loc(D, C).")
	if err != nil {
		t.Fatal(err)
	}
	q := viewplan.MustParseQuery("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)")
	res, err := viewplan.PlanQuery(nil, q, vs, viewplan.PlanRequest{Model: viewplan.M1})
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Errorf("expected nil result, got %+v", res)
	}
}

func TestPlanQueryM2NeedsDatabase(t *testing.T) {
	_, q, vs := plannerFixture(t)
	if _, err := viewplan.PlanQuery(nil, q, vs, viewplan.PlanRequest{Model: viewplan.M2}); err == nil {
		t.Error("M2 without a database accepted")
	}
}
