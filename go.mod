module viewplan

go 1.22

// Deliberately dependency-free. viewplanlint (cmd/viewplanlint) would
// normally pin golang.org/x/tools and drive its go/analysis framework
// (plus the nilness/unusedwrite/sortslice passes), but this module is
// built in an offline environment with an empty module cache, so
// internal/lint/analysis re-implements the needed subset on the
// standard library alone. If x/tools ever becomes available, pin it
// here and the analyzers in internal/lint translate nearly line for
// line (see DESIGN §10).
