module viewplan

go 1.22
