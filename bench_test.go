// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Figure-scale sweeps
// (40 queries per point, up to 1000 views) live in cmd/benchviews; the
// benchmarks here time the representative operation of each figure at a
// paper-scale point so `go test -bench=.` stays minutes, not hours.
package viewplan_test

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"viewplan"
	"viewplan/internal/bucket"
	"viewplan/internal/corecover"
	"viewplan/internal/cost"
	"viewplan/internal/engine"
	"viewplan/internal/minicon"
	"viewplan/internal/naive"
	"viewplan/internal/workload"
)

// benchInstance generates a deterministic workload instance that has a
// rewriting, retrying seeds if needed.
func benchInstance(b *testing.B, cfg workload.Config) *workload.Instance {
	b.Helper()
	for s := int64(0); s < 20; s++ {
		cfg.Seed = cfg.Seed*100 + s
		inst, err := workload.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ok, err := viewplan.HasRewriting(inst.Query, inst.Views)
		if err != nil {
			b.Fatal(err)
		}
		if ok {
			return inst
		}
	}
	b.Fatal("no instance with a rewriting found")
	return nil
}

func benchCoreCover(b *testing.B, shape workload.Shape, nondist, numViews int, opts corecover.Options) {
	inst := benchInstance(b, workload.Config{
		Shape:            shape,
		QuerySubgoals:    8,
		NumViews:         numViews,
		Nondistinguished: nondist,
		Seed:             42,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := corecover.CoreCover(inst.Query, inst.Views, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rewritings) == 0 {
			b.Fatal("no rewriting")
		}
	}
}

// Figure 6(a): star queries, all variables distinguished, time to
// generate all GMRs.
func BenchmarkFig6aStarAllDistinguished(b *testing.B) {
	for _, nv := range []int{100, 500, 1000} {
		b.Run(fmt.Sprintf("views=%d", nv), func(b *testing.B) {
			benchCoreCover(b, workload.Star, 0, nv, corecover.Options{})
		})
	}
}

// Figure 6(b): star queries, one nondistinguished variable.
func BenchmarkFig6bStarOneNondistinguished(b *testing.B) {
	for _, nv := range []int{100, 500, 1000} {
		b.Run(fmt.Sprintf("views=%d", nv), func(b *testing.B) {
			benchCoreCover(b, workload.Star, 1, nv, corecover.Options{})
		})
	}
}

// Figure 7(a): grouping views into equivalence classes (star).
func BenchmarkFig7aStarViewClasses(b *testing.B) {
	inst := benchInstance(b, workload.Config{Shape: workload.Star, QuerySubgoals: 8, NumViews: 500, Seed: 7})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := inst.Views.EquivalenceClasses(); len(got) == 0 {
			b.Fatal("no classes")
		}
	}
}

// Figure 7(b): computing view tuples and their core classes (star).
func BenchmarkFig7bStarViewTupleClasses(b *testing.B) {
	inst := benchInstance(b, workload.Config{Shape: workload.Star, QuerySubgoals: 8, NumViews: 500, Seed: 7})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuples := viewplan.ViewTuples(inst.Query, inst.Views)
		if len(tuples) == 0 {
			b.Fatal("no tuples")
		}
	}
}

// Figure 8(a): chain queries, all variables distinguished.
func BenchmarkFig8aChainAllDistinguished(b *testing.B) {
	for _, nv := range []int{100, 500, 1000} {
		b.Run(fmt.Sprintf("views=%d", nv), func(b *testing.B) {
			benchCoreCover(b, workload.Chain, 0, nv, corecover.Options{})
		})
	}
}

// Figure 8(b): chain queries, one nondistinguished variable.
func BenchmarkFig8bChainOneNondistinguished(b *testing.B) {
	for _, nv := range []int{100, 500, 1000} {
		b.Run(fmt.Sprintf("views=%d", nv), func(b *testing.B) {
			benchCoreCover(b, workload.Chain, 1, nv, corecover.Options{})
		})
	}
}

// Figure 9(a): view equivalence classes (chain).
func BenchmarkFig9aChainViewClasses(b *testing.B) {
	inst := benchInstance(b, workload.Config{Shape: workload.Chain, QuerySubgoals: 8, NumViews: 500, Seed: 9})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := inst.Views.EquivalenceClasses(); len(got) == 0 {
			b.Fatal("no classes")
		}
	}
}

// Figure 9(b): view tuples and core classes (chain).
func BenchmarkFig9bChainViewTupleClasses(b *testing.B) {
	inst := benchInstance(b, workload.Config{Shape: workload.Chain, QuerySubgoals: 8, NumViews: 500, Seed: 9})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuples := viewplan.ViewTuples(inst.Query, inst.Views)
		if len(tuples) == 0 {
			b.Fatal("no tuples")
		}
	}
}

// Table 2 / Example 4.1: the tuple-core computation itself.
func BenchmarkTable2TupleCores(b *testing.B) {
	q := viewplan.MustParseQuery("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)")
	vs, err := viewplan.ParseViews(`
		v1(A, B) :- a(A, B), a(B, B).
		v2(C, D) :- a(C, E), b(C, D).
	`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := viewplan.FindGMRs(q, vs)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rewritings) != 1 {
			b.Fatal("wrong GMR count")
		}
	}
}

// example42 builds the Example 4.2 query/views with parameter k.
func example42(k int) (*viewplan.Query, *viewplan.ViewSet, error) {
	var qb, vb strings.Builder
	qb.WriteString("q(X, Y) :- ")
	for i := 1; i <= k; i++ {
		if i > 1 {
			qb.WriteString(", ")
		}
		fmt.Fprintf(&qb, "a%d(X, Z%d), b%d(Z%d, Y)", i, i, i, i)
	}
	fmt.Fprintf(&vb, "v(X, Y) :- %s.\n", qb.String()[len("q(X, Y) :- "):])
	for i := 1; i < k; i++ {
		fmt.Fprintf(&vb, "v%d(X, Y) :- a%d(X, Z%d), b%d(Z%d, Y).\n", i, i, i, i, i)
	}
	q, err := viewplan.ParseQuery(qb.String())
	if err != nil {
		return nil, nil, err
	}
	vs, err := viewplan.ParseViews(vb.String())
	if err != nil {
		return nil, nil, err
	}
	return q, vs, nil
}

// Example 4.2: CoreCover finds the single one-subgoal GMR.
func BenchmarkExample42CoreCover(b *testing.B) {
	q, vs, err := example42(4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := viewplan.FindGMRs(q, vs)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rewritings) != 1 || len(res.Rewritings[0].Body) != 1 {
			b.Fatal("wrong GMR")
		}
	}
}

// Example 4.2: MiniCon enumerates redundant-subgoal rewritings instead.
func BenchmarkExample42MiniCon(b *testing.B) {
	q, vs, err := example42(4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rws := minicon.Rewritings(q, vs, minicon.Options{EquivalentOnly: true})
		if len(rws) == 0 {
			b.Fatal("no rewritings")
		}
	}
}

// Example 6.1 / Figure 5: the M3 renaming-heuristic plan search.
func BenchmarkExample61M3Heuristic(b *testing.B) {
	vs, err := viewplan.ParseViews(`
		v1(A, B) :- r(A, A), s(B, B).
		v2(A, B) :- t(A, B), s(B, B).
	`)
	if err != nil {
		b.Fatal(err)
	}
	db := viewplan.NewDatabase()
	if err := db.LoadFacts("r(1, 1). s(2, 2). s(4, 4). s(6, 6). s(8, 8). t(1, 2). t(3, 4). t(5, 6). t(7, 8)."); err != nil {
		b.Fatal(err)
	}
	if err := db.MaterializeViews(vs); err != nil {
		b.Fatal(err)
	}
	q := viewplan.MustParseQuery("q(A) :- r(A, A), t(A, B), s(B, B)")
	p2 := viewplan.MustParseQuery("q(A) :- v1(A, B), v2(A, B)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := viewplan.BestPlanM3(db, p2, viewplan.RenamingHeuristic, q, vs)
		if err != nil {
			b.Fatal(err)
		}
		if plan.Cost != 10 {
			b.Fatalf("cost = %d, want the paper's 10", plan.Cost)
		}
	}
}

// Section 5.1: filter selection under M2 (the P2 -> P3 improvement).
func BenchmarkSection51FilterSelection(b *testing.B) {
	vs, err := viewplan.ParseViews(`
		v1(M, D, C) :- car(M, D), loc(D, C).
		v2(S, M, C) :- part(S, M, C).
		v3(S) :- car(M, a), loc(a, C), part(S, M, C).
	`)
	if err != nil {
		b.Fatal(err)
	}
	db := viewplan.NewDatabase()
	var facts strings.Builder
	for i := 0; i < 10; i++ {
		facts.WriteString("car(m" + strconv.Itoa(i) + ", a). loc(a, c" + strconv.Itoa(i) + "). ")
	}
	facts.WriteString("part(s0, m0, c0). ")
	for i := 1; i < 100; i++ {
		facts.WriteString("part(sx" + strconv.Itoa(i) + ", zz, yy). ")
	}
	if err := db.LoadFacts(facts.String()); err != nil {
		b.Fatal(err)
	}
	if err := db.MaterializeViews(vs); err != nil {
		b.Fatal(err)
	}
	q := viewplan.MustParseQuery("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)")
	p2 := viewplan.MustParseQuery("q1(S, C) :- v1(M, a, C), v2(S, M, C)")
	res, err := viewplan.FindMinimalRewritings(q, vs)
	if err != nil {
		b.Fatal(err)
	}
	var filters []viewplan.ViewTuple
	for _, fc := range res.FilterClasses() {
		filters = append(filters, fc.Members...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr, err := viewplan.ImproveWithFilters(db, p2, q, vs, filters)
		if err != nil {
			b.Fatal(err)
		}
		if len(fr.Added) != 1 {
			b.Fatal("filter not selected")
		}
	}
}

// Ablation: equivalence-class grouping off (the paper attributes
// CoreCover's scalability to grouping; compare with Fig6a at 500 views).
func BenchmarkAblationNoViewGrouping(b *testing.B) {
	benchCoreCover(b, workload.Star, 0, 500, corecover.Options{
		DisableViewGrouping:  true,
		DisableTupleGrouping: true,
	})
}

// Ablation: verification skipped (the paper-faithful Theorem 4.1 mode).
func BenchmarkAblationNoVerification(b *testing.B) {
	benchCoreCover(b, workload.Star, 0, 500, corecover.Options{SkipVerification: true})
}

// Baseline: naive Theorem 3.1 enumeration (kept at 60 views — it is
// exponential in the number of view tuples).
func BenchmarkBaselineNaive(b *testing.B) {
	inst := benchInstance(b, workload.Config{Shape: workload.Star, QuerySubgoals: 6, NumViews: 60, Seed: 11})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := naive.GMRs(inst.Query, inst.Views, naive.Options{MaxRewritings: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(got) == 0 {
			b.Fatal("no rewriting")
		}
	}
}

// Baseline: CoreCover on the same 60-view instance as BenchmarkBaselineNaive.
func BenchmarkBaselineCoreCoverSmall(b *testing.B) {
	benchCoreCover(b, workload.Star, 0, 60, corecover.Options{})
}

// Baseline: bucket algorithm on the same small instance, capped.
func BenchmarkBaselineBucket(b *testing.B) {
	inst := benchInstance(b, workload.Config{Shape: workload.Star, QuerySubgoals: 6, NumViews: 60, Seed: 11})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := bucket.Rewritings(inst.Query, inst.Views, bucket.Options{MaxRewritings: 1, MaxCandidates: 200000})
		if err != nil {
			b.Fatal(err)
		}
		_ = got
	}
}

// m2PlanFixture materializes a Figure 6(a) star instance's views over
// synthetic base data (100 rows per relation, 100-value domain: star-join
// fan-out near 1) for the end-to-end M2/M3 planning benchmarks.
func m2PlanFixture(b *testing.B, numViews int) (*viewplan.Database, *workload.Instance) {
	b.Helper()
	inst := benchInstance(b, workload.Config{
		Shape:         workload.Star,
		QuerySubgoals: 8,
		NumViews:      numViews,
		Seed:          42,
	})
	db := viewplan.NewDatabase()
	gen := engine.NewDataGen(1, 100)
	gen.FillForQuery(db, inst.Query, 100)
	if err := db.MaterializeViews(inst.Views); err != nil {
		b.Fatal(err)
	}
	return db, inst
}

// The M2 cost search on the Figure 6(a) star workload: CoreCover*
// rewriting generation plus the engine-backed subset-lattice optimizer
// and filter selection, end to end. The candidate count is capped (the
// per-candidate engine work is what is being measured; uncapped counts
// grow super-linearly in the view count and only repeat it). This is the
// engine-heavy benchmark the `make bench` regression gate watches
// (scripts/bench_engine.sh).
func BenchmarkFig6aStarM2(b *testing.B) {
	for _, nv := range []int{100, 200} {
		b.Run(fmt.Sprintf("views=%d", nv), func(b *testing.B) {
			db, inst := m2PlanFixture(b, nv)
			req := viewplan.PlanRequest{Model: viewplan.M2, MaxRewritings: 64}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := viewplan.PlanQuery(db, inst.Query, inst.Views, req)
				if err != nil {
					b.Fatal(err)
				}
				if res == nil || res.Plan == nil {
					b.Fatal("no plan")
				}
			}
		})
	}
}

// The planning-only benchmark the `make bench` gate watches alongside
// the M2 engine benchmark: CoreCover rewriting generation on the
// Figure 6(a) star workload at 200 views, engine evaluation excluded.
// Sequential (Parallelism 1), so allocs/op is deterministic and the
// whole run exercises the interned planning kernel: canonical-DB
// homomorphism search, tuple-cores, and the bitset cover search.
func BenchmarkFig6aStarPlanning(b *testing.B) {
	inst := benchInstance(b, workload.Config{
		Shape:         workload.Star,
		QuerySubgoals: 8,
		NumViews:      200,
		Seed:          42,
	})
	opts := corecover.Options{Parallelism: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := corecover.CoreCover(inst.Query, inst.Views, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rewritings) == 0 {
			b.Fatal("no rewriting")
		}
	}
}

// The warm-path cost of the resident service: the Fig. 6a planning
// workload answered through a compiled ViewCatalog and an already-primed
// PlanCache, so every iteration is one cache hit — parse-free canonical
// labeling plus a rebased private copy of the memoized Result.
// scripts/bench_service.sh gates allocs/op here against
// scripts/bench_service_baseline.txt, keeping the hit path from quietly
// growing back toward cold-path cost.
func BenchmarkWarmPlanRequest(b *testing.B) {
	inst := benchInstance(b, workload.Config{
		Shape:         workload.Star,
		QuerySubgoals: 8,
		NumViews:      200,
		Seed:          42,
	})
	cat, err := viewplan.CompileViews(inst.Views, viewplan.Options{Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	cache := viewplan.NewPlanCache(16)
	opts := viewplan.Options{Parallelism: 1, Catalog: cat, Cache: cache}
	if _, err := viewplan.FindGMRsWith(inst.Query, nil, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := viewplan.FindGMRsWith(inst.Query, nil, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rewritings) == 0 {
			b.Fatal("no rewriting")
		}
	}
}

// The M3 order search on the same workload (renaming heuristic). Kept at
// 100 views and a small candidate cap: M3 is factorial in the rewriting
// body size.
func BenchmarkFig6aStarM3(b *testing.B) {
	db, inst := m2PlanFixture(b, 100)
	req := viewplan.PlanRequest{Model: viewplan.M3, MaxRewritings: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := viewplan.PlanQuery(db, inst.Query, inst.Views, req)
		if err != nil {
			b.Fatal(err)
		}
		if res == nil || res.Plan == nil {
			b.Fatal("no plan")
		}
	}
}

// Ablation: M2 subset-DP optimizer vs exhaustive permutations.
func BenchmarkM2OptimizerDP(b *testing.B) {
	db, p := m2OptimizerFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cost.BestPlanM2(db, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkM2OptimizerExhaustive(b *testing.B) {
	db, p := m2OptimizerFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cost.BestPlanM2Exhaustive(db, p); err != nil {
			b.Fatal(err)
		}
	}
}

// m2OptimizerFixture builds a 5-view chain rewriting over random data.
// Neutral join fan-out (rows ≈ domain) and a short chain keep the
// exhaustive baseline's cross-product orders affordable, so the pair of
// benchmarks measures search strategy, not data volume.
func m2OptimizerFixture(b *testing.B) (*engine.Database, *viewplan.Query) {
	b.Helper()
	var vsrc, body strings.Builder
	for i := 1; i <= 5; i++ {
		fmt.Fprintf(&vsrc, "w%d(A, B) :- e%d(A, B).\n", i, i)
		if i > 1 {
			body.WriteString(", ")
		}
		fmt.Fprintf(&body, "w%d(X%d, X%d)", i, i-1, i)
	}
	vs, err := viewplan.ParseViews(vsrc.String())
	if err != nil {
		b.Fatal(err)
	}
	db := viewplan.NewDatabase()
	gen := engine.NewDataGen(3, 25)
	for i := 1; i <= 5; i++ {
		gen.Fill(db, "e"+strconv.Itoa(i), 2, 25)
	}
	if err := db.MaterializeViews(vs); err != nil {
		b.Fatal(err)
	}
	p, err := viewplan.ParseQuery("q(X0, X5) :- " + body.String())
	if err != nil {
		b.Fatal(err)
	}
	return db, p
}

// Ablation: statistics-only optimizer (no execution) vs the measuring
// M2 optimizer on the same fixture.
func BenchmarkAblationEstimatedOptimizer(b *testing.B) {
	db, p := m2OptimizerFixture(b)
	cat := viewplan.CollectStats(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := viewplan.EstimateBestOrderM2(cat, p); err != nil {
			b.Fatal(err)
		}
	}
}

// Containment machinery microbenchmark (the inner loop of everything).
func BenchmarkContainmentMapping(b *testing.B) {
	q1 := viewplan.MustParseQuery("q(X0, X8) :- e1(X0, X1), e2(X1, X2), e3(X2, X3), e4(X3, X4), e5(X4, X5), e6(X5, X6), e7(X6, X7), e8(X7, X8)")
	q2 := viewplan.MustParseQuery("q(Y0, Y8) :- e1(Y0, Y1), e2(Y1, Y2), e3(Y2, Y3), e4(Y3, Y4), e5(Y4, Y5), e6(Y5, Y6), e7(Y6, Y7), e8(Y7, Y8)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !viewplan.Equivalent(q1, q2) {
			b.Fatal("not equivalent")
		}
	}
}

// Engine microbenchmark: evaluating the star query over materialized data.
func BenchmarkEngineEvaluate(b *testing.B) {
	db := viewplan.NewDatabase()
	gen := engine.NewDataGen(5, 60)
	for i := 1; i <= 4; i++ {
		gen.Fill(db, "e"+strconv.Itoa(i), 2, 400)
	}
	q := viewplan.MustParseQuery("q(X0, X1, X2, X3, X4) :- e1(X0, X1), e2(X0, X2), e3(X0, X3), e4(X0, X4)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Evaluate(q); err != nil {
			b.Fatal(err)
		}
	}
}

// The scale pipeline's gated point: planning an 8-subgoal star query
// against a resident 1000-view catalog through the sharded cover search
// (candidate prefilter, batched probes, component-decomposed
// enumeration). scripts/bench_scale.sh gates allocs/op here against
// scripts/bench_scale_baseline.txt; cmd/benchscale sweeps the full
// 1k/5k/20k × shards × parallelism grid into BENCH_scale.json.
func BenchmarkScalePlanning1kSharded(b *testing.B) {
	inst, err := workload.ScaleCatalog(1000, 42)
	if err != nil {
		b.Fatal(err)
	}
	cat, err := viewplan.CompileViews(inst.Views, viewplan.Options{Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	opts := viewplan.Options{Parallelism: 1, CoverShards: 1, MaxRewritings: 8, Catalog: cat}
	if _, err := viewplan.FindGMRsWith(inst.Query, nil, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := viewplan.FindGMRsWith(inst.Query, nil, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rewritings) == 0 {
			b.Fatal("no rewriting")
		}
	}
}
